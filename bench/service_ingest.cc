// Streaming-ingestion benchmark: the cost of keeping served snapshots
// fresh via delta batches (DeltaCorpusBuilder + ApplyShardDelta)
// against the operator alternative — a full from-scratch rebuild of
// the IndexedCorpus swapped into every shard after each batch. Both
// paths consume the identical record stream; after the final batch the
// two routers must answer every instance target bit-identically (any
// divergence exits non-zero — this is the oracle from
// tests/service_ingest_delta_test.cc run at bench scale).
//
// The delta path's advantage grows with the catalog: a rebuild
// re-enumerates every instance and re-extracts every shard per batch,
// while the delta path recomputes only targets a record touched and
// republishes only shards whose slice or closure changed. Timings are
// single-threaded construction costs — no parallelism is involved in
// either path, so single-core machines measure the same contrast.
//
//   service_ingest [--products N] [--seed S] [--shards N]
//                  [--records R] [--batch B] [--outdir DIR]

#include <fstream>
#include <thread>

#include "bench_common.h"
#include "service/ingest/delta.h"
#include "service/router.h"
#include "util/jsonl.h"
#include "util/timer.h"

using namespace comparesets;
using namespace comparesets::bench;

namespace {

struct IngestRunResult {
  size_t products = 0;
  size_t instances = 0;
  size_t records = 0;
  size_t batches = 0;
  double delta_ms = 0.0;          ///< Total apply+publish time, delta path.
  double rebuild_ms = 0.0;        ///< Total apply+rebuild+swap time.
  size_t delta_publications = 0;  ///< Shard snapshots the delta path built.
  size_t rebuild_publications = 0;
  bool identical = false;
};

JsonValue ToJson(const IngestRunResult& r) {
  JsonValue::Object object;
  object["products"] = static_cast<int64_t>(r.products);
  object["instances"] = static_cast<int64_t>(r.instances);
  object["records"] = static_cast<int64_t>(r.records);
  object["batches"] = static_cast<int64_t>(r.batches);
  object["delta_ms"] = r.delta_ms;
  object["rebuild_ms"] = r.rebuild_ms;
  object["rebuild_over_delta"] =
      r.delta_ms > 0.0 ? r.rebuild_ms / r.delta_ms : 0.0;
  object["delta_publications"] = static_cast<int64_t>(r.delta_publications);
  object["rebuild_publications"] =
      static_cast<int64_t>(r.rebuild_publications);
  object["responses_identical"] = r.identical;
  return JsonValue(std::move(object));
}

Corpus MakeBase(size_t products, uint64_t seed) {
  auto config = DefaultConfig("Cellphone", products);
  config.status().CheckOK();
  config.value().seed = seed;
  auto corpus = GenerateCorpus(config.value());
  corpus.status().CheckOK();
  Corpus base = std::move(corpus).value();
  base.Finalize();
  return base;
}

std::vector<WalRecord> MakeStream(const Corpus& base, size_t count) {
  std::vector<WalRecord> stream;
  for (size_t i = 0; i < count; ++i) {
    const Product& product = base.products()[(i * 7) % base.num_products()];
    WalRecord record;
    record.product_id = product.id;
    record.review_id = "stream-r" + std::to_string(i);
    record.reviewer_id = "stream-u" + std::to_string(i % 4);
    record.text = "streamed review " + std::to_string(i);
    record.rating = 1.0 + static_cast<double>(i % 5);
    record.opinions.push_back(
        {base.catalog().Name(static_cast<AspectId>(i % base.num_aspects())),
         i % 2 == 0 ? Polarity::kPositive : Polarity::kNegative, 1.0});
    stream.push_back(std::move(record));
  }
  return stream;
}

RouterOptions SerialRouterOptions() {
  RouterOptions options;
  options.engine.threads = 1;
  options.engine.measure_alignment = false;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser flags;
  BenchArgs args = ParseBenchArgs(
      argc, argv,
      [](FlagParser* f) {
        f->AddInt("shards", 2, "shard count behind both routers");
        f->AddInt("records", 48, "streamed WAL records per run");
        f->AddInt("batch", 8, "records per delta batch");
      },
      &flags);
  if (args.help) return 0;

  PrintTitle("Streaming ingestion: delta snapshot applies vs full rebuilds");

  size_t num_shards = static_cast<size_t>(flags.GetInt("shards"));
  size_t num_records = static_cast<size_t>(flags.GetInt("records"));
  size_t batch_size = static_cast<size_t>(flags.GetInt("batch"));
  size_t hardware = std::thread::hardware_concurrency();

  std::printf("\n%zu shards, %zu records per run in batches of %zu\n\n",
              num_shards, num_records, batch_size);

  std::vector<IngestRunResult> results;
  bool all_identical = true;
  for (size_t products : {args.products / 2, args.products,
                          args.products * 2}) {
    Corpus base = MakeBase(products, args.seed);
    auto initial = IndexedCorpus::Build(base);
    initial.status().CheckOK();

    auto delta_router =
        ShardRouter::Create(initial.value(), num_shards,
                            SerialRouterOptions());
    delta_router.status().CheckOK();
    auto rebuild_router =
        ShardRouter::Create(initial.value(), num_shards,
                            SerialRouterOptions());
    rebuild_router.status().CheckOK();
    auto builder = DeltaCorpusBuilder::Create(
        base, delta_router.value()->bounds(), {});
    builder.status().CheckOK();

    IngestRunResult run;
    run.products = products;
    run.instances = initial.value()->num_instances();
    run.records = num_records;

    Corpus master = base;  // the rebuild operator's mutable state
    std::vector<WalRecord> stream = MakeStream(base, num_records);
    for (size_t begin = 0; begin < stream.size(); begin += batch_size) {
      size_t end = std::min(begin + batch_size, stream.size());
      std::vector<WalRecord> batch(stream.begin() + begin,
                                   stream.begin() + end);
      ++run.batches;

      Timer delta_timer;
      auto delta = builder.value()->ApplyBatch(batch);
      delta.status().CheckOK();
      for (ShardDelta& shard : delta.value().shards) {
        delta_router.value()
            ->ApplyShardDelta(shard.shard_id, std::move(shard.snapshot),
                              shard.reviews_added)
            .CheckOK();
        ++run.delta_publications;
      }
      run.delta_ms += 1000.0 * delta_timer.ElapsedSeconds();

      Timer rebuild_timer;
      for (const WalRecord& record : batch) {
        ApplyWalRecordToCorpus(record, &master).CheckOK();
      }
      auto full = IndexedCorpus::Build(master);
      full.status().CheckOK();
      for (size_t s = 0; s < num_shards; ++s) {
        rebuild_router.value()->SwapShardCorpus(s, full.value()).CheckOK();
        ++run.rebuild_publications;
      }
      run.rebuild_ms += 1000.0 * rebuild_timer.ElapsedSeconds();
    }

    // Oracle pass: every final instance target must answer identically
    // on both routers.
    run.identical = true;
    auto final_full = IndexedCorpus::Build(master);
    final_full.status().CheckOK();
    for (const ProblemInstance& instance : final_full.value()->instances()) {
      SelectRequest request;
      request.target_id = instance.target().id;
      request.selector = "CompaReSetSGreedy";
      auto got = delta_router.value()->Select(request);
      auto want = rebuild_router.value()->Select(request);
      if (got.ok() != want.ok() ||
          (got.ok() && (got.value().item_ids != want.value().item_ids ||
                        got.value().selections != want.value().selections ||
                        got.value().objective != want.value().objective))) {
        run.identical = false;
      }
    }
    if (!run.identical) {
      std::fprintf(stderr,
                   "FATAL: delta-path responses diverge from the rebuild "
                   "path at %zu products\n",
                   products);
      all_identical = false;
    }

    std::printf("  %6zu products (%4zu instances): delta %8.2f ms  "
                "rebuild %8.2f ms  (%.1fx, %zu vs %zu publications)\n",
                run.products, run.instances, run.delta_ms, run.rebuild_ms,
                run.delta_ms > 0.0 ? run.rebuild_ms / run.delta_ms : 0.0,
                run.delta_publications, run.rebuild_publications);
    results.push_back(run);
  }

  std::printf(
      "\nBoth paths are single-threaded snapshot construction, so the "
      "contrast holds on 1-core machines; serving-side parallelism is "
      "orthogonal.\n");

  JsonValue::Array runs;
  for (const IngestRunResult& r : results) runs.push_back(ToJson(r));
  JsonValue::Object doc;
  doc["bench"] = "service_ingest";
  doc["shards"] = static_cast<int64_t>(num_shards);
  doc["records_per_run"] = static_cast<int64_t>(num_records);
  doc["batch_size"] = static_cast<int64_t>(batch_size);
  doc["hardware_concurrency"] = static_cast<int64_t>(hardware);
  StampMachine(&doc);
  doc["note"] =
      "single-threaded snapshot-construction cost on both paths; "
      "1-core machines measure the same contrast";
  doc["runs"] = JsonValue(std::move(runs));

  ::mkdir(args.outdir.c_str(), 0755);
  std::string path = args.outdir + "/service_ingest.json";
  std::ofstream out(path);
  if (out) {
    out << JsonValue(std::move(doc)).Dump() << "\n";
    std::printf("[json written to %s]\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
  }
  return all_identical ? 0 : 1;
}
