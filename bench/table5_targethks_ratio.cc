// Table 5 — Performance ratios over TargetHkS_ILP (%): the percentage of
// instances the exact solver proves optimal within the time limit, and
// the objective-value ratio (Ω_approx − Ω_exact) / Ω_exact for the
// greedy heuristic and the Random baseline (§4.3.1, Eq. 8).
//
// The paper caps Gurobi at 60 s per instance and reports 66-100% of
// instances proven optimal. Our combinatorial branch-and-bound exploits
// the clustered weight structure and proves optimality on 100% of the
// (scaled) instances within 10 ms — the cap is kept for protocol parity
// and can be tightened via --time_limit. The time-capped regime where
// greedy can beat the exact solver is demonstrated on unstructured
// stress graphs in ablation_hks_solvers.

#include "bench_common.h"
#include "graph/targethks_baselines.h"
#include "graph/targethks_exact.h"
#include "graph/targethks_greedy.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser parser;
  BenchArgs args = ParseBenchArgs(
      argc, argv,
      [](FlagParser* flags) {
        flags->AddDouble("time_limit", 0.01,
                         "exact-solver wall-clock cap per instance (s)");
      },
      &parser);
  if (args.help) return 0;
  double time_limit = parser.GetDouble("time_limit");

  PrintTitle("Table 5: Performance ratios over TargetHkS exact solver (%)");
  std::printf("%-12s %4s %20s %26s %12s\n", "Dataset", "k", "#Optimal (%)",
              "Greedy ratio (%)", "Random (%)");
  PrintRule(80);

  std::vector<CsvRow> csv = {{"dataset", "k", "optimal_pct", "greedy_ratio",
                              "random_ratio", "instances"}};

  for (const std::string& category : Categories()) {
    Workload workload = BuildWorkload(args, category);
    // Selections from CompaReSetS+ (the paper pipelines Table 5 after it).
    auto selector = MakeSelector("CompaReSetS+").ValueOrDie();
    SelectorOptions options;
    options.m = 3;
    options.seed = args.seed;
    SelectorRun run = RunSelector(*selector, workload, options).ValueOrDie();

    for (size_t k : {3u, 5u, 10u}) {
      size_t eligible = 0;
      size_t proven = 0;
      double omega_exact = 0.0;
      double omega_greedy = 0.0;
      double omega_random = 0.0;
      for (size_t i = 0; i < workload.num_instances(); ++i) {
        const InstanceVectors& vectors = workload.vectors()[i];
        SimilarityGraph graph =
            BuildSimilarityGraph(vectors, run.results[i].selections,
                                 options.lambda, options.mu);
        if (graph.num_vertices() < k) continue;
        ++eligible;
        ExactSolverOptions exact_options;
        exact_options.time_limit_seconds = time_limit;
        CoreList exact =
            SolveTargetHksExact(graph, k, exact_options).ValueOrDie();
        if (exact.proven_optimal) ++proven;
        CoreList greedy = SolveTargetHksGreedy(graph, k).ValueOrDie();
        CoreList random =
            SolveTargetHksRandom(graph, k, args.seed + i).ValueOrDie();
        omega_exact += exact.weight;
        omega_greedy += greedy.weight;
        omega_random += random.weight;
      }
      if (eligible == 0 || omega_exact == 0.0) {
        std::printf("%-12s %4zu %20s\n", category.c_str(), k,
                    "(no instances)");
        continue;
      }
      double optimal_pct = 100.0 * proven / eligible;
      double greedy_ratio =
          100.0 * (omega_greedy - omega_exact) / omega_exact;
      double random_ratio =
          100.0 * (omega_random - omega_exact) / omega_exact;
      std::printf("%-12s %4zu %20s %26s %12s\n", category.c_str(), k,
                  FormatDouble(optimal_pct, 2).c_str(),
                  FormatDouble(greedy_ratio, 5).c_str(),
                  FormatDouble(random_ratio, 2).c_str());
      csv.push_back({category, std::to_string(k),
                     FormatDouble(optimal_pct, 2),
                     FormatDouble(greedy_ratio, 5),
                     FormatDouble(random_ratio, 2),
                     std::to_string(eligible)});
    }
  }

  ExportCsv(args, "table5_targethks_ratio.csv", csv);
  return 0;
}
