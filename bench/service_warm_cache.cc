// Serving-layer benchmark: repeated-query latency against one
// SelectionEngine, cold vs warm. Three configurations are measured:
//
//   vector-cache   result memo disabled — warm passes reuse the cached
//                  InstanceVectors but re-run the selector each time;
//                  isolates the prepared-vector LRU's benefit.
//   full engine    default serving config — an exactly repeated query
//                  is answered whole from the result memo (selectors
//                  are deterministic), so warm passes skip the solve.
//   batched window full engine plus batch_kernel_window=8 — each batch
//                  is staged in windows whose Gram builds run as one
//                  batched kernel pass before the requests execute;
//                  isolates the cross-request batching win on the cold
//                  pass (warm passes memo-hit either way).
//
//   service_warm_cache [--products N] [--instances N] [--seed S]
//                      [--passes P] [--algorithm NAME] [--window W]
//                      [--outdir DIR]

#include "bench_common.h"
#include "util/timer.h"

using namespace comparesets;
using namespace comparesets::bench;

namespace {

struct ConfigResult {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
};

ConfigResult RunConfig(const char* name, size_t result_capacity, size_t window,
                       const std::shared_ptr<const IndexedCorpus>& corpus,
                       const std::vector<SelectRequest>& requests, int passes,
                       std::vector<CsvRow>* csv, std::string* metrics_dump) {
  EngineOptions engine_options;
  // Isolate the cache effect from parallelism: batch fan-out off AND
  // intra-request fan-out off (a 1-thread engine runs batches inline,
  // which would otherwise lend the pool to each request in turn).
  engine_options.threads = 1;
  engine_options.max_intra_request_threads = 1;
  engine_options.cache_capacity = corpus->num_instances();
  engine_options.result_capacity = result_capacity;
  engine_options.batch_kernel_window = window;
  engine_options.measure_alignment = false;
  SelectionEngine engine(corpus, engine_options);

  std::printf("\n[%s]\n", name);
  ConfigResult out;
  double warm_total = 0.0;
  for (int pass = 0; pass <= passes; ++pass) {
    Timer timer;
    std::vector<Result<SelectResponse>> responses =
        engine.SelectBatch(requests);
    double ms = 1000.0 * timer.ElapsedSeconds();
    size_t vector_hits = 0;
    size_t memo_hits = 0;
    for (const auto& response : responses) {
      response.status().CheckOK();
      if (response.value().result_cache_hit) {
        ++memo_hits;
      } else if (response.value().cache_hit) {
        ++vector_hits;
      }
    }
    const char* kind = pass == 0 ? "cold" : "warm";
    if (pass == 0) {
      out.cold_ms = ms;
    } else {
      warm_total += ms;
    }
    std::printf("  pass %d (%s): %8.2f ms total, %6.3f ms/query, "
                "%zu vector hits, %zu memo hits\n",
                pass, kind, ms, ms / static_cast<double>(requests.size()),
                vector_hits, memo_hits);
    csv->push_back({name, std::to_string(window), std::to_string(pass), kind,
                    FormatDouble(ms, 3),
                    FormatDouble(ms / static_cast<double>(requests.size()), 4)});
  }
  out.warm_ms = warm_total / static_cast<double>(passes);
  std::printf("  cold %8.2f ms  vs  warm %8.2f ms  →  %.2fx speedup\n",
              out.cold_ms, out.warm_ms, out.cold_ms / out.warm_ms);
  *metrics_dump = engine.DumpMetrics();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser flags;
  BenchArgs args = ParseBenchArgs(
      argc, argv,
      [](FlagParser* f) {
        f->AddInt("passes", 3, "warm passes after the cold pass");
        f->AddString("algorithm", "CompaReSetS+", "selector to serve");
        f->AddInt("window", 8,
                  "batch_kernel_window for the batched-window config");
      },
      &flags);
  if (args.help) return 0;

  PrintTitle("Serving layer: repeated-query latency, cold vs warm cache");

  std::shared_ptr<const IndexedCorpus> corpus =
      BuildEngineCorpus(args, "Cellphone");
  SelectorOptions options;
  options.seed = args.seed;
  std::vector<SelectRequest> requests =
      InstanceRequests(*corpus, args, flags.GetString("algorithm"), options);
  std::printf("\n%zu products, %zu queries/pass, selector %s\n",
              corpus->corpus().num_products(), requests.size(),
              flags.GetString("algorithm").c_str());

  int passes = flags.GetInt("passes");
  size_t window = static_cast<size_t>(flags.GetInt("window"));
  std::vector<CsvRow> csv = {
      {"config", "window", "pass", "kind", "ms_total", "ms_per_query"}};
  std::string vector_metrics;
  std::string full_metrics;
  std::string windowed_metrics;
  ConfigResult vector_only =
      RunConfig("vector-cache (result memo off)", 0, 0, corpus, requests,
                passes, &csv, &vector_metrics);
  ConfigResult full = RunConfig("full engine (vector cache + result memo)",
                                requests.size(), 0, corpus, requests, passes,
                                &csv, &full_metrics);
  ConfigResult windowed = RunConfig("full engine + batched kernel window",
                                    requests.size(), window, corpus, requests,
                                    passes, &csv, &windowed_metrics);

  std::printf("\nSummary (%d warm passes averaged):\n", passes);
  std::printf("  vector cache only : %8.2f ms cold vs %8.2f ms warm → %.2fx\n",
              vector_only.cold_ms, vector_only.warm_ms,
              vector_only.cold_ms / vector_only.warm_ms);
  std::printf("  full engine       : %8.2f ms cold vs %8.2f ms warm → %.2fx\n",
              full.cold_ms, full.warm_ms, full.cold_ms / full.warm_ms);
  std::printf("  window=%-11zu : %8.2f ms cold vs %8.2f ms warm → %.2fx "
              "(cold vs unwindowed cold: %.2fx)\n",
              window, windowed.cold_ms, windowed.warm_ms,
              windowed.cold_ms / windowed.warm_ms,
              full.cold_ms / windowed.cold_ms);

  std::printf("\nFull-engine metrics:\n%s", full_metrics.c_str());
  ExportCsv(args, "service_warm_cache.csv", csv);
  return 0;
}
