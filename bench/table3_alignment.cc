// Table 3 — Comparison to baselines: review-alignment (ROUGE-1/2/L F1,
// printed x100) for m ∈ {3, 5, 10}, for both views:
//   (a) target item vs comparative items,
//   (b) among all items.
// '*' marks a statistically significant improvement of the best
// approach over the second best (paired t-test on per-instance ROUGE-L,
// p < 0.05), per the paper's footnote.
//
// Served through SelectionEngine: one warm engine per dataset answers
// all 15 (selector, m) sweeps, so instance vectors are built once per
// category (first sweep = cache misses, the rest hits) instead of once
// per sweep.

#include <map>

#include "bench_common.h"
#include "stats/ttest.h"

using namespace comparesets;
using namespace comparesets::bench;

namespace {

constexpr size_t kBudgets[] = {3, 5, 10};

struct CellBlock {
  RougeTriple mean;
  std::vector<double> rouge_l_series;
};

// results[selector][m] for one view.
using ViewResults = std::map<std::string, std::map<size_t, CellBlock>>;

void PrintView(const char* title, const ViewResults& results,
               std::vector<CsvRow>* csv, const std::string& dataset) {
  std::printf("\n  %s\n", title);
  std::printf("  %-20s", "Algorithm");
  for (size_t m : kBudgets) {
    std::printf("   m=%-2zu R-1   R-2   R-L ", m);
  }
  std::printf("\n");

  // Identify best and second-best by mean ROUGE-L per m (for stars).
  std::map<size_t, std::pair<std::string, std::string>> best_pair;
  for (size_t m : kBudgets) {
    std::string best;
    std::string second;
    double best_v = -1.0;
    double second_v = -1.0;
    for (const auto& [name, cells] : results) {
      double v = cells.at(m).mean.rougeL.f1;
      if (v > best_v) {
        second = best;
        second_v = best_v;
        best = name;
        best_v = v;
      } else if (v > second_v) {
        second = name;
        second_v = v;
      }
    }
    best_pair[m] = {best, second};
  }

  for (const std::string& name : AllSelectorNames()) {
    std::printf("  %-20s", name.c_str());
    for (size_t m : kBudgets) {
      const CellBlock& cell = results.at(name).at(m);
      const auto& [best, second] = best_pair.at(m);
      std::string star;
      if (name == best && !second.empty()) {
        TTestResult ttest = PairedTTest(
            cell.rouge_l_series, results.at(second).at(m).rouge_l_series);
        star = Star(ttest.Significant() && ttest.mean_difference > 0);
      }
      std::printf("   %6s%6s%6s%-1s", Pct(cell.mean.rouge1.f1).c_str(),
                  Pct(cell.mean.rouge2.f1).c_str(),
                  Pct(cell.mean.rougeL.f1).c_str(), star.c_str());
      csv->push_back({dataset, title, name, std::to_string(m),
                      Pct(cell.mean.rouge1.f1), Pct(cell.mean.rouge2.f1),
                      Pct(cell.mean.rougeL.f1), star});
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Table 3: Review alignment for comparative review sets selection "
      "(ROUGE F1 x100; λ=1, μ=0.1)");

  std::vector<CsvRow> csv = {{"dataset", "view", "algorithm", "m", "rouge1",
                              "rouge2", "rougeL", "significant"}};

  for (const std::string& category : Categories()) {
    std::shared_ptr<const IndexedCorpus> corpus =
        BuildEngineCorpus(args, category);
    EngineOptions engine_options;
    engine_options.cache_capacity = corpus->num_instances();
    SelectionEngine engine(corpus, engine_options);
    size_t num_instances = std::min(corpus->num_instances(), args.instances);
    std::printf("\nDataset: %s (%zu instances)\n", category.c_str(),
                num_instances);

    ViewResults target_view;
    ViewResults among_view;
    for (size_t m : kBudgets) {
      for (const std::string& name : AllSelectorNames()) {
        SelectorOptions options;
        options.m = m;
        options.lambda = 1.0;
        options.mu = 0.1;
        options.seed = args.seed;
        std::vector<Result<SelectResponse>> responses =
            engine.SelectBatch(InstanceRequests(*corpus, args, name, options));

        // Responses carry per-instance alignment; fold them through
        // SelectorRun so means/series use the same aggregation as the
        // runner-based tables.
        SelectorRun run;
        run.selector_name = name;
        run.alignment.reserve(responses.size());
        for (const auto& response : responses) {
          response.status().CheckOK();
          run.alignment.push_back(response.value().alignment);
        }
        target_view[name][m] = {run.MeanTarget(), run.TargetRougeLSeries()};
        among_view[name][m] = {run.MeanAmong(), run.AmongRougeLSeries()};
      }
    }
    PrintView("(a) Target Item vs Comparative Items", target_view, &csv,
              category);
    PrintView("(b) Among Items", among_view, &csv, category);
  }

  ExportCsv(args, "table3_alignment.csv", csv);
  return 0;
}
