// Table 6 — Review alignment for the core list of comparative items
// (k = m ∈ {3, 5, 10}): the same CompaReSetS+ selections, restricted to
// the core items chosen by Random / Top-k similarity / TargetHkS greedy
// / TargetHkS exact (§4.3.2).

#include <map>

#include "bench_common.h"
#include "graph/targethks_baselines.h"
#include "graph/targethks_exact.h"
#include "graph/targethks_greedy.h"

using namespace comparesets;
using namespace comparesets::bench;

namespace {

const std::vector<std::string>& Methods() {
  static const std::vector<std::string>* kMethods =
      new std::vector<std::string>{"Random", "Top-k similarity",
                                   "TargetHkSGreedy", "TargetHkSExact"};
  return *kMethods;
}

CoreList SolveCoreList(const std::string& method,
                       const SimilarityGraph& graph, size_t k,
                       uint64_t seed) {
  if (method == "Random") {
    return SolveTargetHksRandom(graph, k, seed).ValueOrDie();
  }
  if (method == "Top-k similarity") {
    return SolveTopKSimilarity(graph, k).ValueOrDie();
  }
  if (method == "TargetHkSGreedy") {
    return SolveTargetHksGreedy(graph, k).ValueOrDie();
  }
  ExactSolverOptions options;
  options.time_limit_seconds = 5.0;
  return SolveTargetHksExact(graph, k, options).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Table 6: Review alignment for core list of comparative items "
      "(ROUGE F1 x100, reviews from CompaReSetS+, k = m)");

  std::vector<CsvRow> csv = {{"dataset", "view", "method", "k", "rouge1",
                              "rouge2", "rougeL"}};

  for (const std::string& category : Categories()) {
    Workload workload = BuildWorkload(args, category);
    std::printf("\nDataset: %s (%zu instances)\n", category.c_str(),
                workload.num_instances());

    // One CompaReSetS+ run per review budget k = m, shared by all
    // core-list methods and both views.
    std::map<size_t, SelectorRun> runs;
    for (size_t k : {3u, 5u, 10u}) {
      auto selector = MakeSelector("CompaReSetS+").ValueOrDie();
      SelectorOptions options;
      options.m = k;
      options.seed = args.seed;
      runs.emplace(k,
                   RunSelector(*selector, workload, options).ValueOrDie());
    }

    for (const char* view : {"(a) Target Item vs Comparative Items",
                             "(b) Among Items"}) {
      bool target_view = view[1] == 'a';
      std::printf("\n  %s\n", view);
      std::printf("  %-20s", "Method");
      for (size_t k : {3u, 5u, 10u}) {
        std::printf("  k=m=%-2zu R-1   R-2   R-L", k);
      }
      std::printf("\n");

      for (const std::string& method : Methods()) {
        std::printf("  %-20s", method.c_str());
        for (size_t k : {3u, 5u, 10u}) {
          const SelectorRun& run = runs.at(k);
          SelectorOptions options;
          options.m = k;

          RougeTriple mean;
          size_t counted = 0;
          for (size_t i = 0; i < workload.num_instances(); ++i) {
            const InstanceVectors& vectors = workload.vectors()[i];
            SimilarityGraph graph = BuildSimilarityGraph(
                vectors, run.results[i].selections, options.lambda,
                options.mu);
            if (graph.num_vertices() < k) continue;
            CoreList core =
                SolveCoreList(method, graph, k, args.seed + i);
            AlignmentScores scores = MeasureAlignmentSubset(
                workload.instances()[i], run.results[i].selections,
                core.vertices);
            size_t pairs =
                target_view ? scores.target_pairs : scores.among_pairs;
            if (pairs == 0) continue;
            mean += target_view ? scores.target_vs_comparative
                                : scores.among_items;
            ++counted;
          }
          if (counted > 0) mean /= static_cast<double>(counted);
          std::printf("  %6s%6s%6s ", Pct(mean.rouge1.f1).c_str(),
                      Pct(mean.rouge2.f1).c_str(),
                      Pct(mean.rougeL.f1).c_str());
          csv.push_back({category, target_view ? "target" : "among", method,
                         std::to_string(k), Pct(mean.rouge1.f1),
                         Pct(mean.rouge2.f1), Pct(mean.rougeL.f1)});
        }
        std::printf("\n");
      }
    }
  }

  ExportCsv(args, "table6_core_list.csv", csv);
  return 0;
}
