// Table 4 — Review alignment (ROUGE-L, target vs comparative, m = 3,
// Cellphone) across opinion definitions: binary (default), 3-polarity,
// and unary-scale (§4.2.3).

#include <map>

#include "bench_common.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Table 4: Review alignment (ROUGE-L x100) between target item and "
      "comparative items across opinion definitions (Cellphone, m=3)");

  const OpinionDefinition kDefinitions[] = {
      OpinionDefinition::kBinary,
      OpinionDefinition::kThreePolarity,
      OpinionDefinition::kUnaryScale,
  };
  // The paper's Table 4 covers the non-Random algorithms.
  const std::vector<std::string> kAlgorithms = {
      "Crs", "CompaReSetSGreedy", "CompaReSetS", "CompaReSetS+"};

  // One workload per definition (vectors depend on the opinion model;
  // the underlying corpus and instances are identical by seed).
  std::map<OpinionDefinition, Workload> workloads;
  for (OpinionDefinition definition : kDefinitions) {
    workloads.emplace(definition,
                      BuildWorkload(args, "Cellphone", definition));
  }

  std::printf("%-20s %18s %18s %18s\n", "Algorithm", "binary (default)",
              "3-polarity", "unary-scale");
  PrintRule(80);

  std::vector<CsvRow> csv = {
      {"algorithm", "binary", "3polarity", "unary_scale"}};
  // Also report Random as a reference line (the paper cites it in-text:
  // "Crs underperforms the Random baseline for unary-scale").
  std::vector<std::string> rows = kAlgorithms;
  rows.insert(rows.begin(), "Random");

  for (const std::string& name : rows) {
    auto selector = MakeSelector(name).ValueOrDie();
    SelectorOptions options;
    options.m = 3;
    options.lambda = 1.0;
    options.mu = 0.1;
    options.seed = args.seed;
    CsvRow csv_row = {name};
    std::printf("%-20s ", name.c_str());
    for (OpinionDefinition definition : kDefinitions) {
      SelectorRun run =
          RunSelector(*selector, workloads.at(definition), options)
              .ValueOrDie();
      std::string value = Pct(run.MeanTarget().rougeL.f1);
      std::printf("%18s ", value.c_str());
      csv_row.push_back(value);
    }
    std::printf("\n");
    csv.push_back(csv_row);
  }

  ExportCsv(args, "table4_opinion_definitions.csv", csv);
  return 0;
}
