// Figure 6 — Performance gap versus problem difficulty: ROUGE-L of
// CompaReSetS+ − Random and Crs − Random, bucketed by the target item's
// review count. The paper observes the gap widening with more reviews
// (the combinatorial space grows, so selection quality matters more).

#include <map>

#include "bench_common.h"

using namespace comparesets;
using namespace comparesets::bench;

namespace {

/// Review-count buckets for the x-axis.
size_t BucketOf(size_t reviews) {
  if (reviews <= 5) return 0;
  if (reviews <= 10) return 1;
  if (reviews <= 20) return 2;
  if (reviews <= 40) return 3;
  return 4;
}

const char* BucketLabel(size_t bucket) {
  switch (bucket) {
    case 0:
      return "2-5";
    case 1:
      return "6-10";
    case 2:
      return "11-20";
    case 3:
      return "21-40";
    default:
      return "41+";
  }
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Figure 6: ROUGE-L gap vs Random (x100) by target review count "
      "(Cellphone, m=3)");

  BenchArgs big = args;
  big.instances = args.instances * 2;  // More instances to fill buckets.
  Workload workload = BuildWorkload(big, "Cellphone");

  SelectorOptions options;
  options.m = 3;
  options.seed = args.seed;
  std::map<std::string, SelectorRun> runs;
  for (const std::string& name : {std::string("Random"), std::string("Crs"),
                                  std::string("CompaReSetS+")}) {
    runs.emplace(name, RunSelector(*MakeSelector(name).ValueOrDie(),
                                   workload, options)
                           .ValueOrDie());
  }

  // Per bucket: mean(algorithm R-L − Random R-L), both views.
  struct Accumulator {
    double plus_gap_target = 0.0;
    double crs_gap_target = 0.0;
    double plus_gap_among = 0.0;
    double crs_gap_among = 0.0;
    size_t count = 0;
  };
  std::map<size_t, Accumulator> buckets;

  for (size_t i = 0; i < workload.num_instances(); ++i) {
    size_t reviews = workload.instances()[i].target().reviews.size();
    Accumulator& acc = buckets[BucketOf(reviews)];
    const auto& random = runs.at("Random").alignment[i];
    const auto& crs = runs.at("Crs").alignment[i];
    const auto& plus = runs.at("CompaReSetS+").alignment[i];
    acc.plus_gap_target += plus.target_vs_comparative.rougeL.f1 -
                           random.target_vs_comparative.rougeL.f1;
    acc.crs_gap_target += crs.target_vs_comparative.rougeL.f1 -
                          random.target_vs_comparative.rougeL.f1;
    acc.plus_gap_among +=
        plus.among_items.rougeL.f1 - random.among_items.rougeL.f1;
    acc.crs_gap_among +=
        crs.among_items.rougeL.f1 - random.among_items.rougeL.f1;
    ++acc.count;
  }

  std::printf("%-10s %10s %22s %18s %22s %18s\n", "#reviews", "instances",
              "Plus-Random (target)", "Crs-Random (target)",
              "Plus-Random (among)", "Crs-Random (among)");
  PrintRule(108);
  std::vector<CsvRow> csv = {{"bucket", "instances", "plus_gap_target",
                              "crs_gap_target", "plus_gap_among",
                              "crs_gap_among"}};
  for (const auto& [bucket, acc] : buckets) {
    if (acc.count == 0) continue;
    double n = static_cast<double>(acc.count);
    std::printf("%-10s %10zu %22s %18s %22s %18s\n", BucketLabel(bucket),
                acc.count, Pct(acc.plus_gap_target / n).c_str(),
                Pct(acc.crs_gap_target / n).c_str(),
                Pct(acc.plus_gap_among / n).c_str(),
                Pct(acc.crs_gap_among / n).c_str());
    csv.push_back({BucketLabel(bucket), std::to_string(acc.count),
                   Pct(acc.plus_gap_target / n), Pct(acc.crs_gap_target / n),
                   Pct(acc.plus_gap_among / n), Pct(acc.crs_gap_among / n)});
  }

  ExportCsv(args, "fig6_gap_by_review_count.csv", csv);
  return 0;
}
