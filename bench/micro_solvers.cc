// Microbenchmarks (google-benchmark) for the hot kernels: least squares,
// NNLS, NOMP, integer rounding, the end-to-end selectors, TargetHkS
// solvers, and ROUGE scoring.

#include <benchmark/benchmark.h>

#include "core/compare_sets.h"
#include "core/compare_sets_plus.h"
#include "core/integer_regression.h"
#include "eval/runner.h"
#include "graph/targethks_exact.h"
#include "graph/targethks_greedy.h"
#include "linalg/nnls.h"
#include "linalg/nomp.h"
#include "linalg/qr.h"
#include "text/rouge.h"
#include "util/rng.h"

namespace comparesets {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->UniformDouble();
  }
  return m;
}

Vector RandomVector(size_t size, Rng* rng) {
  Vector v(size);
  for (size_t i = 0; i < size; ++i) v[i] = rng->UniformDouble();
  return v;
}

void BM_LeastSquares(benchmark::State& state) {
  Rng rng(1);
  size_t rows = static_cast<size_t>(state.range(0));
  size_t cols = rows / 4 + 2;
  Matrix a = RandomMatrix(rows, cols, &rng);
  Vector b = RandomVector(rows, &rng);
  for (auto _ : state) {
    auto x = LeastSquares(a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_LeastSquares)->Arg(32)->Arg(128)->Arg(512);

void BM_Nnls(benchmark::State& state) {
  Rng rng(2);
  size_t rows = static_cast<size_t>(state.range(0));
  size_t cols = rows / 4 + 2;
  Matrix a = RandomMatrix(rows, cols, &rng);
  Vector b = RandomVector(rows, &rng);
  for (auto _ : state) {
    auto result = SolveNnls(a, b);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Nnls)->Arg(32)->Arg(128)->Arg(512);

void BM_Nomp(benchmark::State& state) {
  Rng rng(3);
  size_t cols = static_cast<size_t>(state.range(0));
  Matrix v = RandomMatrix(72, cols, &rng);  // 2z + z rows at z = 24.
  Vector target = RandomVector(72, &rng);
  for (auto _ : state) {
    auto result = SolveNomp(v, target, 10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Nomp)->Arg(10)->Arg(40)->Arg(160);

void BM_IntegerRounding(benchmark::State& state) {
  Rng rng(4);
  size_t groups = static_cast<size_t>(state.range(0));
  Vector x = RandomVector(groups, &rng);
  std::vector<int> caps(groups, 3);
  for (auto _ : state) {
    auto nu = RoundToIntegerCounts(x, caps, 10);
    benchmark::DoNotOptimize(nu);
  }
}
BENCHMARK(BM_IntegerRounding)->Arg(8)->Arg(64)->Arg(512);

/// Shared miniature workload for the selector benchmarks.
const Workload& BenchWorkload() {
  static const Workload* kWorkload = [] {
    RunnerConfig config;
    config.category = "Cellphone";
    config.num_products = 120;
    config.max_instances = 4;
    config.seed = 42;
    return new Workload(Workload::BuildSynthetic(config).ValueOrDie());
  }();
  return *kWorkload;
}

void BM_CompareSetsInstance(benchmark::State& state) {
  const InstanceVectors& vectors = BenchWorkload().vectors()[0];
  CompareSetsSelector selector;
  SelectorOptions options;
  options.m = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = selector.Select(vectors, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CompareSetsInstance)->Arg(3)->Arg(5)->Arg(10);

void BM_CompareSetsPlusInstance(benchmark::State& state) {
  const InstanceVectors& vectors = BenchWorkload().vectors()[0];
  CompareSetsPlusSelector selector;
  SelectorOptions options;
  options.m = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = selector.Select(vectors, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CompareSetsPlusInstance)->Arg(3)->Arg(5)->Arg(10);

SimilarityGraph RandomGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  SimilarityGraph graph(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      graph.set_weight(i, j, rng.UniformDouble(0.0, 10.0));
    }
  }
  return graph;
}

void BM_TargetHksExact(benchmark::State& state) {
  SimilarityGraph graph =
      RandomGraph(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto result = SolveTargetHksExact(graph, 5);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TargetHksExact)->Arg(10)->Arg(20)->Arg(30);

void BM_TargetHksGreedy(benchmark::State& state) {
  SimilarityGraph graph =
      RandomGraph(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    auto result = SolveTargetHksGreedy(graph, 5);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TargetHksGreedy)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_RougePair(benchmark::State& state) {
  const Product& product = *BenchWorkload().instances()[0].items[0];
  RougeDocument a(product.reviews[0].text);
  RougeDocument b(product.reviews[1].text);
  for (auto _ : state) {
    RougeTriple scores = a.ScoreAgainst(b);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_RougePair);

void BM_RougeDocumentConstruction(benchmark::State& state) {
  const Product& product = *BenchWorkload().instances()[0].items[0];
  const std::string& text = product.reviews[0].text;
  for (auto _ : state) {
    RougeDocument doc(text);
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_RougeDocumentConstruction);

void BM_BuildInstanceVectors(benchmark::State& state) {
  const Workload& workload = BenchWorkload();
  OpinionModel model = OpinionModel::Binary(workload.corpus().num_aspects());
  for (auto _ : state) {
    InstanceVectors vectors =
        BuildInstanceVectors(model, workload.instances()[0]);
    benchmark::DoNotOptimize(vectors);
  }
}
BENCHMARK(BM_BuildInstanceVectors);

}  // namespace
}  // namespace comparesets

BENCHMARK_MAIN();
