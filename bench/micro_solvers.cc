// Microbenchmarks (google-benchmark) for the hot kernels: least squares,
// NNLS, NOMP, integer rounding, the end-to-end selectors, TargetHkS
// solvers, and ROUGE scoring.
//
// Besides the google-benchmark suite, the binary has a kernel-comparison
// mode that times the legacy dense solver stack against the sparse
// Gram/Cholesky core on a Figure-7-style workload and writes the
// measured ratios as JSON:
//
//   micro_solvers --kernels_only [--kernels_out=results/solver_kernels.json]
//                 [--kernel=scalar|avx2|auto]
//
// The two paths must produce identical NOMP supports on every budget;
// the mode fails (non-zero exit) if they diverge. The mode also times
// the Gram-path work under each kernel-dispatch target (scalar, avx2
// where the CPU has it) and under the cross-request batched entry
// points, cross-checking that every target and the batched paths return
// bit-identical results; --kernel=NAME pins the dispatch and restricts
// the comparison to that target.
//
// A second comparison mode times one CompaReSetS+ request serially vs
// with intra-request parallelism at several lane caps, verifies the
// selections are bit-identical at every cap, and writes the measured
// speedups as JSON (see docs/benchmarks.md):
//
//   micro_solvers --intra_only [--intra_out=results/solver_intra_parallel.json]
//
// Any other arguments are forwarded to google-benchmark unchanged.

#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/compare_sets.h"
#include "core/compare_sets_plus.h"
#include "core/design_matrix.h"
#include "core/integer_regression.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "graph/targethks_exact.h"
#include "graph/targethks_greedy.h"
#include "linalg/gram.h"
#include "linalg/kernels/kernels.h"
#include "linalg/nnls.h"
#include "linalg/nomp.h"
#include "linalg/qr.h"
#include "text/rouge.h"
#include "util/jsonl.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace comparesets {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->UniformDouble();
  }
  return m;
}

Vector RandomVector(size_t size, Rng* rng) {
  Vector v(size);
  for (size_t i = 0; i < size; ++i) v[i] = rng->UniformDouble();
  return v;
}

void BM_LeastSquares(benchmark::State& state) {
  Rng rng(1);
  size_t rows = static_cast<size_t>(state.range(0));
  size_t cols = rows / 4 + 2;
  Matrix a = RandomMatrix(rows, cols, &rng);
  Vector b = RandomVector(rows, &rng);
  for (auto _ : state) {
    auto x = LeastSquares(a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_LeastSquares)->Arg(32)->Arg(128)->Arg(512);

void BM_Nnls(benchmark::State& state) {
  Rng rng(2);
  size_t rows = static_cast<size_t>(state.range(0));
  size_t cols = rows / 4 + 2;
  Matrix a = RandomMatrix(rows, cols, &rng);
  Vector b = RandomVector(rows, &rng);
  for (auto _ : state) {
    auto result = SolveNnls(a, b);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Nnls)->Arg(32)->Arg(128)->Arg(512);

void BM_Nomp(benchmark::State& state) {
  Rng rng(3);
  size_t cols = static_cast<size_t>(state.range(0));
  Matrix v = RandomMatrix(72, cols, &rng);  // 2z + z rows at z = 24.
  Vector target = RandomVector(72, &rng);
  for (auto _ : state) {
    auto result = SolveNomp(v, target, 10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Nomp)->Arg(10)->Arg(40)->Arg(160);

void BM_IntegerRounding(benchmark::State& state) {
  Rng rng(4);
  size_t groups = static_cast<size_t>(state.range(0));
  Vector x = RandomVector(groups, &rng);
  std::vector<int> caps(groups, 3);
  for (auto _ : state) {
    auto nu = RoundToIntegerCounts(x, caps, 10);
    benchmark::DoNotOptimize(nu);
  }
}
BENCHMARK(BM_IntegerRounding)->Arg(8)->Arg(64)->Arg(512);

/// Shared miniature workload for the selector benchmarks.
const Workload& BenchWorkload() {
  static const Workload* kWorkload = [] {
    RunnerConfig config;
    config.category = "Cellphone";
    config.num_products = 120;
    config.max_instances = 4;
    config.seed = 42;
    return new Workload(Workload::BuildSynthetic(config).ValueOrDie());
  }();
  return *kWorkload;
}

/// Shared CompaReSetS design system (target item, λ = 1) for the
/// Gram-path kernel benchmarks.
const DesignSystem& BenchSystem() {
  static const DesignSystem* kSystem = [] {
    const InstanceVectors& vectors = BenchWorkload().vectors()[0];
    return new DesignSystem(BuildCompareSetsSystem(vectors, 0, 1.0));
  }();
  return *kSystem;
}

void BM_GramBuild(benchmark::State& state) {
  const DesignSystem& system = BenchSystem();
  for (auto _ : state) {
    GramSystem gram = BuildGramSystem(system.v, system.target);
    benchmark::DoNotOptimize(gram);
  }
}
BENCHMARK(BM_GramBuild);

void BM_NompGram(benchmark::State& state) {
  const DesignSystem& system = BenchSystem();
  size_t ell = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = SolveNompGram(system.gram, ell);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NompGram)->Arg(3)->Arg(5)->Arg(10);

void BM_NnlsGram(benchmark::State& state) {
  const GramSystem& gram = BenchSystem().gram;
  for (auto _ : state) {
    auto result = SolveNnlsGram(gram.gram, gram.vty, gram.target_norm2);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NnlsGram);

void BM_SparseMultiplyTranspose(benchmark::State& state) {
  const DesignSystem& system = BenchSystem();
  Vector out;
  for (auto _ : state) {
    system.v.MultiplyTranspose(system.target, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SparseMultiplyTranspose);

void BM_CompareSetsInstance(benchmark::State& state) {
  const InstanceVectors& vectors = BenchWorkload().vectors()[0];
  CompareSetsSelector selector;
  SelectorOptions options;
  options.m = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = selector.Select(vectors, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CompareSetsInstance)->Arg(3)->Arg(5)->Arg(10);

void BM_CompareSetsPlusInstance(benchmark::State& state) {
  const InstanceVectors& vectors = BenchWorkload().vectors()[0];
  CompareSetsPlusSelector selector;
  SelectorOptions options;
  options.m = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = selector.Select(vectors, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CompareSetsPlusInstance)->Arg(3)->Arg(5)->Arg(10);

SimilarityGraph RandomGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  SimilarityGraph graph(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      graph.set_weight(i, j, rng.UniformDouble(0.0, 10.0));
    }
  }
  return graph;
}

void BM_TargetHksExact(benchmark::State& state) {
  SimilarityGraph graph =
      RandomGraph(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto result = SolveTargetHksExact(graph, 5);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TargetHksExact)->Arg(10)->Arg(20)->Arg(30);

void BM_TargetHksGreedy(benchmark::State& state) {
  SimilarityGraph graph =
      RandomGraph(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    auto result = SolveTargetHksGreedy(graph, 5);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TargetHksGreedy)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_RougePair(benchmark::State& state) {
  const Product& product = *BenchWorkload().instances()[0].items[0];
  RougeDocument a(product.reviews[0].text);
  RougeDocument b(product.reviews[1].text);
  for (auto _ : state) {
    RougeTriple scores = a.ScoreAgainst(b);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_RougePair);

void BM_RougeDocumentConstruction(benchmark::State& state) {
  const Product& product = *BenchWorkload().instances()[0].items[0];
  const std::string& text = product.reviews[0].text;
  for (auto _ : state) {
    RougeDocument doc(text);
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_RougeDocumentConstruction);

void BM_BuildInstanceVectors(benchmark::State& state) {
  const Workload& workload = BenchWorkload();
  OpinionModel model = OpinionModel::Binary(workload.corpus().num_aspects());
  for (auto _ : state) {
    InstanceVectors vectors =
        BuildInstanceVectors(model, workload.instances()[0]);
    benchmark::DoNotOptimize(vectors);
  }
}
BENCHMARK(BM_BuildInstanceVectors);

// ---------------------------------------------------------------------
// Kernel-comparison mode (--kernels_only / --kernels_out=PATH).

/// Seconds per call, measured over enough repetitions to amortize timer
/// noise (one warm-up call, then ~0.3 s of repeats).
template <typename Fn>
double TimePerCall(const Fn& fn) {
  fn();  // Warm-up: populates thread-local workspaces and caches.
  Timer probe;
  fn();
  double estimate = probe.ElapsedSeconds();
  int reps = 1;
  if (estimate < 0.3) {
    reps = static_cast<int>(0.3 / (estimate + 1e-9)) + 1;
    if (reps > 100000) reps = 100000;
  }
  Timer timer;
  for (int i = 0; i < reps; ++i) fn();
  return timer.ElapsedSeconds() / reps;
}

struct KernelTiming {
  std::string name;
  double dense_seconds = 0.0;
  double gram_seconds = 0.0;
  double speedup() const {
    return gram_seconds > 0.0 ? dense_seconds / gram_seconds : 0.0;
  }
};

/// A Figure-7-style workload whose target item carries a review count in
/// the paper's scaling regime (≥ 500 reviews on the solved item).
Workload KernelWorkload() {
  SyntheticConfig config = DefaultConfig("Cellphone", 32).ValueOrDie();
  config.avg_reviews_per_product = 600.0;
  config.max_reviews_per_product = 4000;
  config.seed = 42;
  Corpus corpus = GenerateCorpus(config).ValueOrDie();
  RunnerConfig runner;
  runner.category = config.category;
  runner.max_instances = 8;
  runner.seed = config.seed;
  return Workload::FromCorpus(std::move(corpus), runner).ValueOrDie();
}

int RunKernelComparison(const std::string& out_path,
                        const std::string& kernel_flag) {
  Workload workload = KernelWorkload();
  // Solve the instance whose target item has the most reviews.
  size_t best = 0;
  for (size_t i = 1; i < workload.num_instances(); ++i) {
    if (workload.vectors()[i].num_reviews(0) >
        workload.vectors()[best].num_reviews(0)) {
      best = i;
    }
  }
  const InstanceVectors& vectors = workload.vectors()[best];
  size_t reviews = vectors.num_reviews(0);
  DesignSystem system = BuildCompareSetsSystem(vectors, 0, 1.0);
  Matrix dense_v = system.v.ToDense();
  const size_t m = 10;
  std::printf(
      "kernel workload: target item with %zu reviews, system %zu x %zu "
      "(nnz %zu), m = %zu\n",
      reviews, system.v.rows(), system.v.cols(), system.v.nnz(), m);

  // Cross-check first: both paths must pick identical supports.
  for (size_t ell = 1; ell <= m; ++ell) {
    auto dense = SolveNomp(dense_v, system.target, ell).ValueOrDie();
    auto gram = SolveNompGram(system.gram, ell).ValueOrDie();
    if (dense.support != gram.support) {
      std::fprintf(stderr,
                   "support mismatch between dense and Gram NOMP at "
                   "ell=%zu — kernels are NOT equivalent\n",
                   ell);
      return 1;
    }
  }

  std::vector<KernelTiming> kernels;

  // Headline: the Integer-Regression relaxation sweep, ℓ = 1..m, on a
  // prepared DesignSystem. Each path solves from the structure the
  // system carries for it — the legacy system held the dense matrix,
  // the current one holds sparse Ṽ plus its precomputed GramSystem
  // (built once per system and cached; that one-time assembly is
  // measured separately as gram_build below).
  KernelTiming nomp;
  nomp.name = "nomp_sweep";
  nomp.dense_seconds = TimePerCall([&] {
    for (size_t ell = 1; ell <= m; ++ell) {
      auto result = SolveNomp(dense_v, system.target, ell);
      benchmark::DoNotOptimize(result);
    }
  });
  nomp.gram_seconds = TimePerCall([&] {
    for (size_t ell = 1; ell <= m; ++ell) {
      auto result = SolveNompGram(system.gram, ell);
      benchmark::DoNotOptimize(result);
    }
  });
  kernels.push_back(nomp);

  // The NOMP refit kernel: NNLS restricted to a pursued support. The
  // dense path copies the support columns and QR-solves rows×k systems;
  // the Gram path solves k×k normal equations in place.
  std::vector<size_t> support =
      SolveNompGram(system.gram, m).ValueOrDie().support;
  KernelTiming nnls;
  nnls.name = "nnls_refit";
  nnls.dense_seconds = TimePerCall([&] {
    Matrix sub(dense_v.rows(), support.size());
    for (size_t t = 0; t < support.size(); ++t) {
      for (size_t r = 0; r < dense_v.rows(); ++r) {
        sub(r, t) = dense_v(r, support[t]);
      }
    }
    auto result = SolveNnls(sub, system.target);
    benchmark::DoNotOptimize(result);
  });
  std::vector<double> vty_local(support.size());
  for (size_t t = 0; t < support.size(); ++t) {
    vty_local[t] = system.gram.vty[support[t]];
  }
  nnls.gram_seconds = TimePerCall([&] {
    auto result =
        SolveNnlsGramSubset(system.gram.gram, support, vty_local.data(),
                            system.gram.target_norm2, {}, nullptr);
    benchmark::DoNotOptimize(result);
  });
  kernels.push_back(nnls);

  KernelTiming multiply;
  multiply.name = "multiply_transpose";
  multiply.dense_seconds = TimePerCall([&] {
    Vector result = dense_v.MultiplyTranspose(system.target);
    benchmark::DoNotOptimize(result);
  });
  Vector scratch;
  multiply.gram_seconds = TimePerCall([&] {
    system.v.MultiplyTranspose(system.target, &scratch);
    benchmark::DoNotOptimize(scratch);
  });
  kernels.push_back(multiply);

  // Normal-equation assembly: dense column dot-products vs the sparse
  // scatter build.
  KernelTiming gram_build;
  gram_build.name = "gram_build";
  gram_build.dense_seconds = TimePerCall([&] {
    size_t q = dense_v.cols();
    Matrix gram(q, q);
    for (size_t i = 0; i < q; ++i) {
      for (size_t j = i; j < q; ++j) {
        gram(i, j) = gram(j, i) = dense_v.Column(i).Dot(dense_v.Column(j));
      }
    }
    benchmark::DoNotOptimize(gram);
  });
  gram_build.gram_seconds = TimePerCall([&] {
    GramSystem gram = BuildGramSystem(system.v, system.target);
    benchmark::DoNotOptimize(gram);
  });
  kernels.push_back(gram_build);

  std::printf("%-20s %14s %14s %10s\n", "kernel", "dense (us)", "gram (us)",
              "speedup");
  for (const KernelTiming& k : kernels) {
    std::printf("%-20s %14.2f %14.2f %9.2fx\n", k.name.c_str(),
                k.dense_seconds * 1e6, k.gram_seconds * 1e6, k.speedup());
  }

  // -------------------------------------------------------------------
  // Per-dispatch-target rows: the same Gram-path work timed under each
  // KernelDispatch target, plus the cross-request batched entry points
  // the engine's batch window runs. --kernel=NAME pins the dispatch and
  // restricts the per-target rows to it (batched rows run under the
  // best target left enabled).
  std::vector<std::string> dispatch_targets;
  if (kernel_flag == "auto") {
    dispatch_targets.push_back("scalar");
    if (Avx2Kernels() != nullptr) dispatch_targets.push_back("avx2");
  } else {
    dispatch_targets.push_back(kernel_flag);
  }

  // A window-sized batch sharing one design matrix: four distinct
  // targets, each repeated once — the duplicate mix a serving window
  // coalesces. The shared V lets BuildGramSystemBatch assemble G once
  // for all eight; the bit-exact repeats memo-hit in SolveNnlsGramBatch.
  const size_t kBatch = 8;
  std::vector<Vector> batch_targets;
  batch_targets.reserve(kBatch);
  for (size_t k = 0; k < kBatch / 2; ++k) {
    Vector t = system.target;
    for (size_t i = 0; i < t.size(); ++i) {
      t[i] *= 1.0 + 0.05 * static_cast<double>(k);
    }
    batch_targets.push_back(std::move(t));
  }
  for (size_t k = 0; k < kBatch / 2; ++k) {
    batch_targets.push_back(batch_targets[k]);  // Bit-exact repeats.
  }
  std::vector<GramBuildItem> gram_items;
  std::vector<Vector> batch_vty(kBatch);
  std::vector<double> batch_norm2(kBatch);
  std::vector<NnlsGramProblem> nnls_problems;
  for (size_t k = 0; k < kBatch; ++k) {
    gram_items.push_back({&system.v, &batch_targets[k]});
    system.v.MultiplyTranspose(batch_targets[k], &batch_vty[k]);
    batch_norm2[k] = batch_targets[k].Dot(batch_targets[k]);
  }
  for (size_t k = 0; k < kBatch; ++k) {
    nnls_problems.push_back({&batch_vty[k], batch_norm2[k]});
  }

  // Cross-check first, as with dense-vs-gram above: every dispatch
  // target and both batched entry points must return bit-identical
  // numbers on this workload before any of them is timed.
  auto same_vector = [](const Vector& a, const Vector& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  };
  std::vector<Vector> reference_x;
  Vector reference_vty;
  for (size_t t = 0; t < dispatch_targets.size(); ++t) {
    if (!SetKernelDispatch(dispatch_targets[t].c_str())) {
      std::fprintf(stderr, "kernel target %s is unavailable on this CPU\n",
                   dispatch_targets[t].c_str());
      return 1;
    }
    std::vector<GramSystem> batch_grams = BuildGramSystemBatch(gram_items);
    std::vector<NnlsResult> batch_nnls =
        SolveNnlsGramBatch(system.gram.gram, nnls_problems).ValueOrDie();
    for (size_t k = 0; k < kBatch; ++k) {
      GramSystem solo = BuildGramSystem(*gram_items[k].v, *gram_items[k].target);
      NnlsResult nnls_solo =
          SolveNnlsGram(system.gram.gram, batch_vty[k], batch_norm2[k])
              .ValueOrDie();
      if (!same_vector(batch_grams[k].vty, solo.vty) ||
          !same_vector(batch_nnls[k].x, nnls_solo.x)) {
        std::fprintf(stderr,
                     "batched result diverged from solo calls under %s at "
                     "problem %zu — batching is NOT bit-transparent\n",
                     dispatch_targets[t].c_str(), k);
        return 1;
      }
      if (t == 0) {
        reference_x.push_back(std::move(nnls_solo.x));
        if (k == 0) reference_vty = std::move(solo.vty);
      } else if (!same_vector(batch_nnls[k].x, reference_x[k]) ||
                 (k == 0 && !same_vector(batch_grams[0].vty, reference_vty))) {
        std::fprintf(stderr,
                     "dispatch target %s diverged from %s at problem %zu — "
                     "targets are NOT bit-identical\n",
                     dispatch_targets[t].c_str(), dispatch_targets[0].c_str(),
                     k);
        return 1;
      }
    }
  }

  struct DispatchTiming {
    std::string name;
    std::string target;
    double seconds = 0.0;  // Per problem, amortized over the batch.
  };
  std::vector<DispatchTiming> dispatch;
  // Best-of-3: scheduler noise on shared machines dwarfs the per-target
  // deltas at these durations; the minimum is the least-contended run.
  auto min_time_per_call = [](const std::function<void()>& fn) {
    double best_seconds = TimePerCall(fn);
    for (int repeat = 1; repeat < 3; ++repeat) {
      best_seconds = std::min(best_seconds, TimePerCall(fn));
    }
    return best_seconds;
  };
  for (const std::string& target : dispatch_targets) {
    SetKernelDispatch(target.c_str());
    DispatchTiming gram_row{"gram_build", target};
    gram_row.seconds = min_time_per_call([&] {
                         for (const GramBuildItem& item : gram_items) {
                           GramSystem g = BuildGramSystem(*item.v, *item.target);
                           benchmark::DoNotOptimize(g);
                         }
                       }) /
                       static_cast<double>(kBatch);
    dispatch.push_back(gram_row);
    DispatchTiming nnls_row{"nnls_refit", target};
    nnls_row.seconds = min_time_per_call([&] {
                         for (size_t k = 0; k < kBatch; ++k) {
                           auto result = SolveNnlsGram(
                               system.gram.gram, batch_vty[k], batch_norm2[k]);
                           benchmark::DoNotOptimize(result);
                         }
                       }) /
                       static_cast<double>(kBatch);
    dispatch.push_back(nnls_row);
  }
  SetKernelDispatch(dispatch_targets.back().c_str());
  DispatchTiming gram_batched{"gram_build", "batched"};
  gram_batched.seconds = min_time_per_call([&] {
                           std::vector<GramSystem> grams =
                               BuildGramSystemBatch(gram_items);
                           benchmark::DoNotOptimize(grams);
                         }) /
                         static_cast<double>(kBatch);
  dispatch.push_back(gram_batched);
  DispatchTiming nnls_batched{"nnls_refit", "batched"};
  nnls_batched.seconds = min_time_per_call([&] {
                           auto results =
                               SolveNnlsGramBatch(system.gram.gram,
                                                  nnls_problems);
                           benchmark::DoNotOptimize(results);
                         }) /
                         static_cast<double>(kBatch);
  dispatch.push_back(nnls_batched);
  if (kernel_flag == "auto") SetKernelDispatch("auto");

  auto scalar_seconds = [&](const std::string& name) {
    for (const DispatchTiming& d : dispatch) {
      if (d.name == name && d.target == "scalar") return d.seconds;
    }
    return 0.0;
  };
  std::printf("\n%-14s %-10s %16s %12s   (batch of %zu, batched rows under "
              "%s)\n",
              "kernel", "target", "us/problem", "vs scalar", kBatch,
              dispatch_targets.back().c_str());
  for (const DispatchTiming& d : dispatch) {
    double base = scalar_seconds(d.name);
    std::printf("%-14s %-10s %16.2f %11.2fx\n", d.name.c_str(),
                d.target.c_str(), d.seconds * 1e6,
                base > 0.0 ? base / d.seconds : 0.0);
  }

  JsonValue::Array kernel_json;
  for (const KernelTiming& k : kernels) {
    JsonValue::Object object;
    object["name"] = k.name;
    object["dense_seconds"] = k.dense_seconds;
    object["gram_seconds"] = k.gram_seconds;
    object["speedup"] = k.speedup();
    kernel_json.push_back(JsonValue(std::move(object)));
  }
  JsonValue::Array dispatch_json;
  for (const DispatchTiming& d : dispatch) {
    JsonValue::Object object;
    object["name"] = d.name;
    object["target"] = d.target;
    object["seconds_per_problem"] = d.seconds;
    double base = scalar_seconds(d.name);
    if (base > 0.0 && d.seconds > 0.0) {
      object["speedup_vs_scalar"] = base / d.seconds;
    }
    dispatch_json.push_back(JsonValue(std::move(object)));
  }

  JsonValue::Object doc;
  doc["bench"] = "solver_kernels";
  doc["reviews"] = static_cast<int64_t>(reviews);
  doc["rows"] = static_cast<int64_t>(system.v.rows());
  doc["columns"] = static_cast<int64_t>(system.v.cols());
  doc["nnz"] = static_cast<int64_t>(system.v.nnz());
  doc["m"] = static_cast<int64_t>(m);
  doc["nomp_sweep_speedup"] = kernels.front().speedup();
  doc["kernels"] = JsonValue(std::move(kernel_json));
  doc["kernel_flag"] = kernel_flag;
  doc["batch"] = static_cast<int64_t>(kBatch);
  doc["batched_rows_target"] = dispatch_targets.back();
  doc["dispatch"] = JsonValue(std::move(dispatch_json));
  bench::StampMachine(&doc);

  size_t slash = out_path.find_last_of('/');
  if (slash != std::string::npos) {
    ::mkdir(out_path.substr(0, slash).c_str(), 0755);  // Existing is fine.
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  out << JsonValue(std::move(doc)).Dump() << "\n";
  std::printf("[json written to %s]\n", out_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------
// Intra-request parallelism mode (--intra_only / --intra_out=PATH).

int RunIntraParallelComparison(const std::string& out_path) {
  // A single large request: many comparative items, so the per-item
  // fan-out has work to distribute.
  RunnerConfig runner;
  runner.category = "Cellphone";
  runner.num_products = 64;
  runner.max_instances = 8;
  runner.seed = 42;
  Workload workload = Workload::BuildSynthetic(runner).ValueOrDie();
  size_t best = 0;
  for (size_t i = 1; i < workload.num_instances(); ++i) {
    if (workload.vectors()[i].num_items() >
        workload.vectors()[best].num_items()) {
      best = i;
    }
  }
  const InstanceVectors& vectors = workload.vectors()[best];
  size_t items = vectors.num_items();

  CompareSetsPlusSelector selector;
  SelectorOptions options;
  options.m = 5;
  options.extra_sync_rounds = 1;

  size_t hardware = std::thread::hardware_concurrency();
  ThreadPool pool(hardware > 1 ? hardware - 1 : 1);  // Caller adds a lane.
  std::printf(
      "intra workload: instance with %zu items, m = %zu, %zu hardware "
      "threads (pool workers + caller = %zu lanes max)\n",
      items, options.m, hardware, pool.num_threads() + 1);

  options.parallel = ParallelContext{&pool, 1};
  SelectionResult reference = selector.Select(vectors, options).ValueOrDie();
  double serial_seconds = TimePerCall([&] {
    auto result = selector.Select(vectors, options);
    benchmark::DoNotOptimize(result);
  });

  JsonValue::Array timings;
  {
    JsonValue::Object row;
    row["lanes"] = static_cast<int64_t>(1);
    row["seconds"] = serial_seconds;
    row["speedup"] = 1.0;
    timings.push_back(JsonValue(std::move(row)));
  }
  std::printf("%-8s %14s %10s\n", "lanes", "seconds", "speedup");
  std::printf("%-8zu %14.4f %9.2fx\n", size_t{1}, serial_seconds, 1.0);

  for (size_t lanes : {size_t{2}, size_t{4}, pool.num_threads() + 1}) {
    if (lanes <= 1 || lanes > pool.num_threads() + 1) continue;
    options.parallel = ParallelContext{&pool, lanes};
    SelectionResult parallel = selector.Select(vectors, options).ValueOrDie();
    if (parallel.selections != reference.selections ||
        parallel.objective != reference.objective) {
      std::fprintf(stderr,
                   "parallel selections diverged from serial at %zu lanes "
                   "— determinism contract broken\n",
                   lanes);
      return 1;
    }
    double seconds = TimePerCall([&] {
      auto result = selector.Select(vectors, options);
      benchmark::DoNotOptimize(result);
    });
    double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    std::printf("%-8zu %14.4f %9.2fx\n", lanes, seconds, speedup);
    JsonValue::Object row;
    row["lanes"] = static_cast<int64_t>(lanes);
    row["seconds"] = seconds;
    row["speedup"] = speedup;
    timings.push_back(JsonValue(std::move(row)));
  }

  JsonValue::Object doc;
  doc["bench"] = "solver_intra_parallel";
  doc["selector"] = "CompaReSetS+";
  doc["items"] = static_cast<int64_t>(items);
  doc["m"] = static_cast<int64_t>(options.m);
  doc["extra_sync_rounds"] = options.extra_sync_rounds;
  doc["hardware_concurrency"] = static_cast<int64_t>(hardware);
  bench::StampMachine(&doc);
  doc["timings"] = JsonValue(std::move(timings));

  size_t slash = out_path.find_last_of('/');
  if (slash != std::string::npos) {
    ::mkdir(out_path.substr(0, slash).c_str(), 0755);  // Existing is fine.
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  out << JsonValue(std::move(doc)).Dump() << "\n";
  std::printf("[json written to %s]\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace comparesets

int main(int argc, char** argv) {
  std::string kernels_out;
  std::string intra_out;
  std::string kernel_flag = "auto";
  bool kernels_only = false;
  bool intra_only = false;
  std::vector<char*> forwarded;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i] != nullptr ? argv[i] : "";
    const std::string kOutPrefix = "--kernels_out=";
    const std::string kIntraPrefix = "--intra_out=";
    const std::string kKernelPrefix = "--kernel=";
    if (arg.rfind(kOutPrefix, 0) == 0) {
      kernels_out = arg.substr(kOutPrefix.size());
    } else if (arg == "--kernels_only") {
      kernels_only = true;
    } else if (arg.rfind(kKernelPrefix, 0) == 0) {
      kernel_flag = arg.substr(kKernelPrefix.size());
    } else if (arg.rfind(kIntraPrefix, 0) == 0) {
      intra_out = arg.substr(kIntraPrefix.size());
    } else if (arg == "--intra_only") {
      intra_only = true;
    } else {
      forwarded.push_back(argv[i]);
    }
  }
  if (kernel_flag != "auto" && kernel_flag != "scalar" &&
      kernel_flag != "avx2") {
    std::fprintf(stderr, "--kernel= must be scalar, avx2, or auto (got %s)\n",
                 kernel_flag.c_str());
    return 2;
  }
  // Pin the dispatch up front so every mode (google-benchmark suite
  // included) runs under the requested target.
  if (!comparesets::SetKernelDispatch(kernel_flag.c_str())) {
    std::fprintf(stderr, "kernel target %s is unavailable on this CPU\n",
                 kernel_flag.c_str());
    return 2;
  }
  if (kernels_only && kernels_out.empty()) {
    kernels_out = "results/solver_kernels.json";
  }
  if (intra_only && intra_out.empty()) {
    intra_out = "results/solver_intra_parallel.json";
  }
  if (!kernels_out.empty()) {
    int rc = comparesets::RunKernelComparison(kernels_out, kernel_flag);
    if (rc != 0 || (kernels_only && intra_out.empty())) return rc;
  }
  if (!intra_out.empty()) {
    int rc = comparesets::RunIntraParallelComparison(intra_out);
    if (rc != 0 || intra_only || kernels_only) return rc;
  }
  if (kernels_only) return 0;

  int forwarded_argc = static_cast<int>(forwarded.size());
  benchmark::Initialize(&forwarded_argc, forwarded.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded_argc,
                                             forwarded.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
