// Generalization beyond positive/negative opinions (paper §4.2.3): the
// same selection pipeline under the three opinion definitions — binary,
// 3-polarity (adds neutral), and unary-scale (sigmoid of aggregated
// sentiment) — plus what changes in the vectors.
//
//   ./build/examples/opinion_definitions

#include <cstdio>

#include "core/selector.h"
#include "data/synthetic.h"
#include "eval/information_loss.h"
#include "opinion/vectors.h"
#include "util/logging.h"

using namespace comparesets;

int main() {
  SetLogLevel(LogLevel::kWarning);
  SyntheticConfig config = DefaultConfig("Clothing", 120).ValueOrDie();
  Corpus corpus = GenerateCorpus(config).ValueOrDie();
  std::vector<ProblemInstance> instances = corpus.BuildInstances();
  const ProblemInstance& instance = instances.front();

  const OpinionDefinition kDefinitions[] = {
      OpinionDefinition::kBinary,
      OpinionDefinition::kThreePolarity,
      OpinionDefinition::kUnaryScale,
  };

  for (OpinionDefinition definition : kDefinitions) {
    OpinionModel model(definition, corpus.num_aspects());
    InstanceVectors vectors = BuildInstanceVectors(model, instance);

    std::printf("=== %s ===\n", OpinionDefinitionName(definition));
    std::printf("  opinion vector dims: %zu (z = %zu aspects)\n",
                model.opinion_dims(), model.num_aspects());

    // Peek at the target's τ: the first few non-zero entries.
    const Vector& tau = vectors.tau[0];
    std::printf("  τ_target non-zeros:");
    int shown = 0;
    for (size_t d = 0; d < tau.size() && shown < 5; ++d) {
      if (tau[d] > 0.0) {
        std::printf(" [%zu]=%.3f", d, tau[d]);
        ++shown;
      }
    }
    std::printf("\n");

    SelectorOptions options;
    options.m = 3;
    SelectionResult result =
        MakeSelector("CompaReSetS+").ValueOrDie()->Select(vectors, options)
            .ValueOrDie();
    InformationLoss loss =
        MeasureInformationLoss(vectors, result.selections);
    std::printf("  Eq. 5 objective: %.4f\n", result.objective);
    std::printf("  information retained (cosine τ vs π(S), target): %.4f\n",
                loss.cosine_target);
    std::printf("  target selection:");
    for (size_t review_index : result.selections[0]) {
      std::printf(" %s",
                  instance.target().reviews[review_index].id.c_str());
    }
    std::printf("\n\n");
  }

  std::printf(
      "All three definitions plug into the same Integer-Regression engine;\n"
      "only the opinion block of the design matrix and the target τ change\n"
      "(see src/opinion/opinion_model.h).\n");
  return 0;
}
