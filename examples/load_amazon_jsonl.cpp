// Loading real data: the Amazon Product Review JSON-lines layout the
// paper uses (§4.1.1). This example writes a miniature dataset in that
// exact format to a temp directory, then loads it through the full
// pipeline — JSONL parsing, frequency-based aspect mining, sentiment
// annotation — and runs a comparative selection on it.
//
// To use an actual Amazon category file pair:
//   ./build/examples/load_amazon_jsonl reviews.jsonl meta.jsonl
//
//   ./build/examples/load_amazon_jsonl            (bundled mini dataset)

#include <cstdio>

#include "core/selector.h"
#include "data/loader.h"
#include "opinion/vectors.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace comparesets;

namespace {

const char kMiniReviews[] = R"JSON(
{"asin": "B01", "reviewerID": "U1", "overall": 5.0, "reviewText": "The battery is excellent and lasts two full days. Shipping was quick."}
{"asin": "B01", "reviewerID": "U2", "overall": 2.0, "reviewText": "Battery drains fast and the case cracked within a week."}
{"asin": "B01", "reviewerID": "U3", "overall": 4.0, "reviewText": "Good screen, bright and crisp. The case feels solid."}
{"asin": "B01", "reviewerID": "U4", "overall": 5.0, "reviewText": "Love the screen and the battery keeps going and going."}
{"asin": "B02", "reviewerID": "U1", "overall": 4.0, "reviewText": "The battery is good though the screen scratches easily."}
{"asin": "B02", "reviewerID": "U5", "overall": 5.0, "reviewText": "Great case included and the battery charges quickly."}
{"asin": "B02", "reviewerID": "U6", "overall": 1.0, "reviewText": "Terrible screen, dim and dull. Battery died in a month."}
{"asin": "B02", "reviewerID": "U7", "overall": 4.0, "reviewText": "Solid case, decent battery, average screen for the price."}
{"asin": "B03", "reviewerID": "U2", "overall": 5.0, "reviewText": "The screen is gorgeous and the case survived a drop."}
{"asin": "B03", "reviewerID": "U8", "overall": 3.0, "reviewText": "Battery is average but the screen makes up for it."}
{"asin": "B03", "reviewerID": "U9", "overall": 2.0, "reviewText": "Case feels cheap and the battery is disappointing."}
{"asin": "B03", "reviewerID": "U1", "overall": 5.0, "reviewText": "Excellent screen and excellent battery, what else matters."}
)JSON";

const char kMiniMetadata[] = R"JSON(
{"asin": "B01", "title": "Phone Alpha", "related": {"also_bought": ["B02", "B03"]}}
{"asin": "B02", "title": "Phone Beta", "related": {"also_bought": ["B01", "B03"]}}
{"asin": "B03", "title": "Phone Gamma", "related": {"also_bought": ["B01"]}}
)JSON";

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kInfo);

  LoaderOptions options;
  options.mining.min_review_frequency = 2;  // Mini corpus: low thresholds.
  options.mining.max_aspects = 20;

  Result<Corpus> loaded = Status::Internal("unset");
  if (argc == 3) {
    loaded = LoadAmazonCorpusFromFiles("UserData", argv[1], argv[2], options);
  } else {
    loaded = LoadAmazonCorpus("MiniAmazon", kMiniReviews, kMiniMetadata,
                              options);
  }
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Corpus corpus = std::move(loaded).value();

  std::printf("Loaded %zu products / %zu reviews; mined %zu aspects:",
              corpus.num_products(), corpus.num_reviews(),
              corpus.num_aspects());
  for (const std::string& aspect : corpus.catalog().names()) {
    std::printf(" %s", aspect.c_str());
  }
  std::printf("\n\n");

  InstanceOptions instance_options;
  instance_options.min_comparative_items = 1;
  std::vector<ProblemInstance> instances =
      corpus.BuildInstances(instance_options);
  if (instances.empty()) {
    std::fprintf(stderr, "no problem instances (check also_bought links)\n");
    return 1;
  }

  const ProblemInstance& instance = instances.front();
  OpinionModel model = OpinionModel::Binary(corpus.num_aspects());
  InstanceVectors vectors = BuildInstanceVectors(model, instance);
  SelectorOptions selector_options;
  selector_options.m = 2;
  SelectionResult result = MakeSelector("CompaReSetS+")
                               .ValueOrDie()
                               ->Select(vectors, selector_options)
                               .ValueOrDie();

  for (size_t i = 0; i < instance.num_items(); ++i) {
    const Product& product = *instance.items[i];
    std::printf("%s (%s)\n", product.title.c_str(), product.id.c_str());
    for (size_t review_index : result.selections[i]) {
      const Review& review = product.reviews[review_index];
      std::printf("  (%.0f*) %s\n", review.rating, review.text.c_str());
      std::printf("        mentions:");
      for (const OpinionMention& mention : review.opinions) {
        std::printf(" %s%s", corpus.catalog().Name(mention.aspect).c_str(),
                    mention.polarity == Polarity::kPositive
                        ? "+"
                        : (mention.polarity == Polarity::kNegative ? "-"
                                                                   : "~"));
      }
      std::printf("\n");
    }
  }
  return 0;
}
