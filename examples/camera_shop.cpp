// The paper's motivating scenario (Figure 1): a shopper views a DSLR
// camera and is shown "similar items". This example hand-builds a tiny
// camera catalog through the public data model — the path an adopter
// takes with their own structured data — then compares what CompaReSetS
// (target-aware) and CompaReSetS+ (fully synchronized) select against
// the independent Crs baseline.
//
//   ./build/examples/camera_shop

#include <cstdio>

#include "core/selector.h"
#include "data/corpus.h"
#include "eval/objective.h"
#include "opinion/vectors.h"
#include "util/logging.h"

using namespace comparesets;

namespace {

Review MakeReview(AspectCatalog* catalog, const std::string& id,
                  const std::string& text, double rating,
                  std::initializer_list<std::pair<const char*, Polarity>>
                      mentions) {
  Review review;
  review.id = id;
  review.text = text;
  review.rating = rating;
  for (const auto& [aspect, polarity] : mentions) {
    review.opinions.push_back({catalog->Intern(aspect), polarity, 1.0});
  }
  return review;
}

constexpr Polarity kPos = Polarity::kPositive;
constexpr Polarity kNeg = Polarity::kNegative;

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  Corpus corpus("CameraShop");
  AspectCatalog* catalog = &corpus.catalog();

  Product rebel;
  rebel.id = "canon-rebel-t7";
  rebel.title = "Canon EOS Rebel T7 DSLR";
  rebel.also_bought = {"canon-2000d", "canon-t8i"};
  rebel.reviews = {
      MakeReview(catalog, "t7-r1",
                 "The picture quality is stunning for the price and the "
                 "autofocus locks on fast.",
                 5, {{"picture", kPos}, {"autofocus", kPos}}),
      MakeReview(catalog, "t7-r2",
                 "Great beginner camera, the menus are simple but the "
                 "battery drains quicker than I hoped.",
                 4, {{"beginner", kPos}, {"battery", kNeg}}),
      MakeReview(catalog, "t7-r3",
                 "Autofocus hunts in low light and the kit lens is soft at "
                 "the edges.",
                 3, {{"autofocus", kNeg}, {"lens", kNeg}}),
      MakeReview(catalog, "t7-r4",
                 "Battery lasts a full day of shooting and the picture "
                 "quality beats my old point and shoot by miles.",
                 5, {{"battery", kPos}, {"picture", kPos}}),
      MakeReview(catalog, "t7-r5",
                 "Perfect for a beginner, picture quality is sharp and the "
                 "price was right.",
                 5, {{"beginner", kPos}, {"picture", kPos}, {"price", kPos}}),
  };

  Product alt2000d;
  alt2000d.id = "canon-2000d";
  alt2000d.title = "Canon EOS 2000D (Rebel T7) bundle";
  alt2000d.reviews = {
      MakeReview(catalog, "2d-r1",
                 "Bundle came with everything; the picture quality is crisp "
                 "outdoors.",
                 5, {{"picture", kPos}, {"bundle", kPos}}),
      MakeReview(catalog, "2d-r2",
                 "The autofocus is slower than advertised and misses moving "
                 "subjects.",
                 2, {{"autofocus", kNeg}}),
      MakeReview(catalog, "2d-r3",
                 "Battery life is honestly fantastic, shot two events on one "
                 "charge.",
                 5, {{"battery", kPos}}),
      MakeReview(catalog, "2d-r4",
                 "The tripod in the bundle is flimsy but the camera picture "
                 "quality is solid.",
                 4, {{"bundle", kNeg}, {"picture", kPos}}),
  };

  Product t8i;
  t8i.id = "canon-t8i";
  t8i.title = "Canon EOS Rebel T8i";
  t8i.reviews = {
      MakeReview(catalog, "t8-r1",
                 "Autofocus is in another league, tracks eyes during video.",
                 5, {{"autofocus", kPos}, {"video", kPos}}),
      MakeReview(catalog, "t8-r2",
                 "Picture quality is superb but the price is steep for a "
                 "hobbyist.",
                 4, {{"picture", kPos}, {"price", kNeg}}),
      MakeReview(catalog, "t8-r3",
                 "Video features are great; battery is average at best.",
                 4, {{"video", kPos}, {"battery", kNeg}}),
      MakeReview(catalog, "t8-r4",
                 "As a beginner upgrade it is friendly enough and the "
                 "picture quality impresses everyone.",
                 5, {{"beginner", kPos}, {"picture", kPos}}),
  };

  corpus.AddProduct(std::move(rebel)).CheckOK();
  corpus.AddProduct(std::move(alt2000d)).CheckOK();
  corpus.AddProduct(std::move(t8i)).CheckOK();
  corpus.Finalize();

  std::vector<ProblemInstance> instances = corpus.BuildInstances();
  const ProblemInstance& instance = instances.front();
  OpinionModel model = OpinionModel::Binary(corpus.num_aspects());
  InstanceVectors vectors = BuildInstanceVectors(model, instance);

  SelectorOptions options;
  options.m = 2;  // Two reviews per camera.
  options.lambda = 1.0;
  options.mu = 0.5;  // Small catalog: lean harder on synchronization.

  std::printf("Shopper is viewing: %s\n", instance.target().title.c_str());
  std::printf("Compared against:   %s | %s\n\n",
              instance.items[1]->title.c_str(),
              instance.items[2]->title.c_str());

  for (const char* name : {"Crs", "CompaReSetS", "CompaReSetS+"}) {
    auto selector = MakeSelector(name).ValueOrDie();
    SelectionResult result = selector->Select(vectors, options).ValueOrDie();
    std::printf("=== %s (Eq. 5 objective %.4f) ===\n", name,
                result.objective);
    for (size_t i = 0; i < instance.num_items(); ++i) {
      const Product& product = *instance.items[i];
      std::printf("  %s\n", product.title.c_str());
      for (size_t review_index : result.selections[i]) {
        const Review& review = product.reviews[review_index];
        std::printf("    (%.0f*) %s\n", review.rating, review.text.c_str());
      }
    }
    std::printf("\n");
  }

  std::printf(
      "Note how the synchronized selections surface the aspects all three\n"
      "cameras share (picture quality, autofocus, battery), which is what\n"
      "makes side-by-side comparison possible.\n");
  return 0;
}
