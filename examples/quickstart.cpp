// Quickstart: generate a small synthetic category, take one problem
// instance (a target product + its also-bought comparatives), select
// m = 3 comparative reviews per product with CompaReSetS+, and print
// the result.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/selector.h"
#include "data/synthetic.h"
#include "eval/alignment.h"
#include "opinion/vectors.h"
#include "util/logging.h"

using namespace comparesets;

int main() {
  SetLogLevel(LogLevel::kWarning);

  // 1. Data: a miniature "Cellphone" corpus (or load your own with
  //    LoadAmazonCorpusFromFiles — see examples/load_amazon_jsonl.cpp).
  SyntheticConfig config = DefaultConfig("Cellphone", 120).ValueOrDie();
  Corpus corpus = GenerateCorpus(config).ValueOrDie();
  std::printf("Corpus: %zu products, %zu reviews, %zu aspects\n",
              corpus.num_products(), corpus.num_reviews(),
              corpus.num_aspects());

  // 2. Problem instances: one per target product with its also-bought
  //    comparative products.
  std::vector<ProblemInstance> instances = corpus.BuildInstances();
  const ProblemInstance& instance = instances.front();
  std::printf("Instance: target '%s' with %zu comparative products\n\n",
              instance.target().id.c_str(), instance.num_items() - 1);

  // 3. Vector context under the binary opinion model (π, φ, τ, Γ).
  OpinionModel model = OpinionModel::Binary(corpus.num_aspects());
  InstanceVectors vectors = BuildInstanceVectors(model, instance);

  // 4. Select at most m = 3 reviews per product, synchronized across
  //    products (CompaReSetS+, the paper's best method).
  auto selector = MakeSelector("CompaReSetS+").ValueOrDie();
  SelectorOptions options;
  options.m = 3;
  options.lambda = 1.0;  // Opinion-vs-aspect trade-off (paper's best).
  options.mu = 0.1;      // Cross-item synchronization (paper's best).
  SelectionResult result = selector->Select(vectors, options).ValueOrDie();
  std::printf("Eq. 5 objective of the selection: %.4f\n\n", result.objective);

  // 5. Inspect the selections (only the first 4 items, for brevity).
  for (size_t i = 0; i < std::min<size_t>(4, instance.num_items()); ++i) {
    const Product& product = *instance.items[i];
    std::printf("%s %s (%zu reviews total)\n",
                i == 0 ? "[target]     " : "[comparative]",
                product.id.c_str(), product.reviews.size());
    for (size_t review_index : result.selections[i]) {
      const Review& review = product.reviews[review_index];
      std::printf("  - (%.0f stars) %.96s%s\n", review.rating,
                  review.text.c_str(),
                  review.text.size() > 96 ? "..." : "");
    }
  }

  // 6. How well do the selected sets align for comparison?
  AlignmentScores alignment = MeasureAlignment(instance, result.selections);
  std::printf("\nAlignment (mean pairwise ROUGE F1):\n");
  std::printf("  target vs comparative: R-1 %.2f  R-L %.2f  (%zu pairs)\n",
              100.0 * alignment.target_vs_comparative.rouge1.f1,
              100.0 * alignment.target_vs_comparative.rougeL.f1,
              alignment.target_pairs);
  std::printf("  among items:           R-1 %.2f  R-L %.2f  (%zu pairs)\n",
              100.0 * alignment.among_items.rouge1.f1,
              100.0 * alignment.among_items.rougeL.f1,
              alignment.among_pairs);
  return 0;
}
