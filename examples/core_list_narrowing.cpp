// Core-list narrowing (paper §3, Figures 4 and 8-10): when the
// also-bought list is long (30+ items in the Toy category), narrow it to
// the k most mutually-similar items including the target, by solving
// TargetHkS on the similarity graph induced by CompaReSetS+ selections.
//
//   ./build/examples/core_list_narrowing

#include <cstdio>

#include "core/selector.h"
#include "data/synthetic.h"
#include "eval/alignment.h"
#include "graph/targethks_baselines.h"
#include "graph/targethks_exact.h"
#include "graph/targethks_greedy.h"
#include "opinion/vectors.h"
#include "util/logging.h"

using namespace comparesets;

int main() {
  SetLogLevel(LogLevel::kWarning);

  // Toy has the longest also-bought lists (Table 2: 34.33 on average) —
  // exactly the situation that motivates narrowing.
  SyntheticConfig config = DefaultConfig("Toy", 160).ValueOrDie();
  Corpus corpus = GenerateCorpus(config).ValueOrDie();

  // Pick the instance with the longest comparative list.
  std::vector<ProblemInstance> instances = corpus.BuildInstances();
  const ProblemInstance* instance = &instances[0];
  for (const ProblemInstance& candidate : instances) {
    if (candidate.num_items() > instance->num_items()) {
      instance = &candidate;
    }
  }
  std::printf("Target '%s' arrives with %zu comparative products — far too "
              "many to read.\n\n",
              instance->target().id.c_str(), instance->num_items() - 1);

  // Step 1: synchronized review selection across the whole list.
  OpinionModel model = OpinionModel::Binary(corpus.num_aspects());
  InstanceVectors vectors = BuildInstanceVectors(model, *instance);
  SelectorOptions options;
  options.m = 3;
  SelectionResult selection =
      MakeSelector("CompaReSetS+").ValueOrDie()->Select(vectors, options)
          .ValueOrDie();

  // Step 2: similarity graph over items (w_ij = max d − d_ij, §3.1).
  SimilarityGraph graph = BuildSimilarityGraph(
      vectors, selection.selections, options.lambda, options.mu);

  // Step 3: heaviest k-subgraph containing the target, three ways.
  size_t k = 3;
  ExactSolverOptions exact_options;
  exact_options.time_limit_seconds = 10.0;
  CoreList exact = SolveTargetHksExact(graph, k, exact_options).ValueOrDie();
  CoreList greedy = SolveTargetHksGreedy(graph, k).ValueOrDie();
  CoreList top_k = SolveTopKSimilarity(graph, k).ValueOrDie();

  auto describe = [&](const char* name, const CoreList& core) {
    AlignmentScores scores = MeasureAlignmentSubset(
        *instance, selection.selections, core.vertices);
    std::printf("%-18s weight %8.4f%s  among-items R-L %.2f  items:", name,
                core.weight, core.proven_optimal ? " (proven optimal)" : "",
                100.0 * scores.among_items.rougeL.f1);
    for (size_t v : core.vertices) {
      std::printf(" %s", instance->items[v]->id.c_str());
    }
    std::printf("\n");
  };
  describe("TargetHkS exact", exact);
  describe("TargetHkS greedy", greedy);
  describe("Top-k similarity", top_k);

  // Step 4: the shopper-facing result — k products, 3 reviews each,
  // in the style of the paper's case studies (Figures 8-10).
  std::printf("\n===== Core comparison set (k = %zu) =====\n", k);
  for (size_t v : exact.vertices) {
    const Product& product = *instance->items[v];
    std::printf("\n%s %s\n", v == 0 ? "This item:" : "Compare:  ",
                product.title.c_str());
    for (size_t review_index : selection.selections[v]) {
      const Review& review = product.reviews[review_index];
      std::printf("  (%.0f*) %.110s%s\n", review.rating,
                  review.text.c_str(),
                  review.text.size() > 110 ? "..." : "");
    }
  }
  return 0;
}
