#include "util/jsonl.h"

#include <gtest/gtest.h>

namespace comparesets {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null").ValueOrDie().is_null());
  EXPECT_TRUE(ParseJson("true").ValueOrDie().as_bool());
  EXPECT_FALSE(ParseJson("false").ValueOrDie().as_bool());
  EXPECT_DOUBLE_EQ(ParseJson("3.5").ValueOrDie().as_number(), 3.5);
  EXPECT_DOUBLE_EQ(ParseJson("-17").ValueOrDie().as_number(), -17.0);
  EXPECT_DOUBLE_EQ(ParseJson("1e3").ValueOrDie().as_number(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"").ValueOrDie().as_string(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParseTest, UnicodeEscapeUtf8) {
  auto v = ParseJson("\"\\u00e9\\u4e2d\"");  // é + 中 as \\u escapes.
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_string(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonParseTest, NestedStructures) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.ok());
  const JsonValue& root = v.value();
  ASSERT_TRUE(root.is_object());
  const JsonValue* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_TRUE(a->as_array()[2].Find("b")->as_bool());
  EXPECT_TRUE(root.Find("c")->is_null());
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonParseTest, WhitespaceTolerated) {
  auto v = ParseJson("  { \"k\" :\n[ 1 , 2 ]\t} ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().Find("k")->as_array().size(), 2u);
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // Trailing content.
  EXPECT_FALSE(ParseJson(R"("\u00g1")").ok());
}

TEST(JsonDumpTest, RoundTripsValues) {
  std::string doc =
      R"({"arr":[1,2.5,"s"],"b":false,"n":null,"nested":{"x":3}})";
  auto v = ParseJson(doc);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().Dump(), doc);
}

TEST(JsonDumpTest, EscapesControlCharacters) {
  JsonValue v(std::string("a\nb\"c\x01"));
  EXPECT_EQ(v.Dump(), "\"a\\nb\\\"c\\u0001\"");
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimal) {
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(42.5).Dump(), "42.5");
}

TEST(JsonGettersTest, TypedAccessWithFallbacks) {
  auto v = ParseJson(R"({"s":"text","n":4.0})").ValueOrDie();
  EXPECT_EQ(v.GetString("s"), "text");
  EXPECT_EQ(v.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(v.GetString("n", "dflt"), "dflt");  // Wrong type => fallback.
  EXPECT_DOUBLE_EQ(v.GetNumber("n"), 4.0);
  EXPECT_DOUBLE_EQ(v.GetNumber("s", -1.0), -1.0);
}

TEST(JsonLinesTest, ParsesOnePerLine) {
  auto values = ParseJsonLines("{\"a\":1}\n\n{\"a\":2}\n{\"a\":3}");
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values.value().size(), 3u);
  EXPECT_DOUBLE_EQ(values.value()[1].GetNumber("a"), 2.0);
}

TEST(JsonLinesTest, ReportsLineNumberOnError) {
  auto values = ParseJsonLines("{\"a\":1}\n{bad}\n");
  ASSERT_FALSE(values.ok());
  EXPECT_NE(values.status().message().find("line 2"), std::string::npos);
}

TEST(JsonLinesTest, EmptyInputYieldsNothing) {
  auto values = ParseJsonLines("");
  ASSERT_TRUE(values.ok());
  EXPECT_TRUE(values.value().empty());
}

}  // namespace
}  // namespace comparesets
