#include "eval/runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

namespace comparesets {
namespace {

RunnerConfig SmallConfig() {
  RunnerConfig config;
  config.category = "Cellphone";
  config.num_products = 80;
  config.max_instances = 8;
  config.seed = 42;
  return config;
}

TEST(WorkloadTest, BuildSyntheticPreparesVectors) {
  auto workload = Workload::BuildSynthetic(SmallConfig());
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload.value().num_instances(), 8u);
  EXPECT_EQ(workload.value().vectors().size(), 8u);
  for (size_t i = 0; i < workload.value().num_instances(); ++i) {
    const InstanceVectors& vectors = workload.value().vectors()[i];
    EXPECT_EQ(vectors.instance, &workload.value().instances()[i]);
    EXPECT_EQ(vectors.tau.size(), vectors.num_items());
    EXPECT_EQ(vectors.gamma.size(),
              workload.value().corpus().num_aspects());
  }
}

TEST(WorkloadTest, MaxComparativeItemsCapApplies) {
  RunnerConfig config = SmallConfig();
  config.max_comparative_items = 3;
  auto workload = Workload::BuildSynthetic(config);
  ASSERT_TRUE(workload.ok());
  for (const ProblemInstance& instance : workload.value().instances()) {
    EXPECT_LE(instance.num_items(), 4u);
  }
}

TEST(WorkloadTest, OpinionDefinitionPropagates) {
  RunnerConfig config = SmallConfig();
  config.opinion = OpinionDefinition::kUnaryScale;
  auto workload = Workload::BuildSynthetic(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload.value().vectors()[0].model.definition(),
            OpinionDefinition::kUnaryScale);
  EXPECT_EQ(workload.value().vectors()[0].tau[0].size(),
            workload.value().corpus().num_aspects());
}

TEST(RunSelectorTest, ProducesPerInstanceResults) {
  auto workload = Workload::BuildSynthetic(SmallConfig());
  ASSERT_TRUE(workload.ok());
  auto selector = MakeSelector("CompaReSetS");
  ASSERT_TRUE(selector.ok());
  SelectorOptions options;
  options.m = 3;
  auto run = RunSelector(*selector.value(), workload.value(), options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run.value().results.size(), 8u);
  EXPECT_EQ(run.value().alignment.size(), 8u);
  EXPECT_GT(run.value().total_seconds, 0.0);
  EXPECT_EQ(run.value().selector_name, "CompaReSetS");
}

TEST(RunSelectorTest, MeansAndSeriesConsistent) {
  auto workload = Workload::BuildSynthetic(SmallConfig());
  ASSERT_TRUE(workload.ok());
  auto selector = MakeSelector("Random");
  ASSERT_TRUE(selector.ok());
  SelectorOptions options;
  options.m = 3;
  auto run = RunSelector(*selector.value(), workload.value(), options);
  ASSERT_TRUE(run.ok());

  std::vector<double> series = run.value().TargetRougeLSeries();
  EXPECT_EQ(series.size(), 8u);
  double manual_mean = 0.0;
  for (double v : series) manual_mean += v;
  manual_mean /= series.size();
  EXPECT_NEAR(run.value().MeanTarget().rougeL.f1, manual_mean, 1e-12);

  RougeTriple among = run.value().MeanAmong();
  EXPECT_GT(among.rouge1.f1, 0.0);  // Template text always shares words.
  EXPECT_LE(among.rouge1.f1, 1.0);
}

TEST(RunSelectorTest, CompareSetsPlusBeatsRandomOnAlignment) {
  // The headline hypothesis of the paper at miniature scale: joint
  // selection aligns reviews better than random selection.
  RunnerConfig config = SmallConfig();
  config.max_instances = 12;
  auto workload = Workload::BuildSynthetic(config);
  ASSERT_TRUE(workload.ok());
  SelectorOptions options;
  options.m = 3;
  auto random = RunSelector(*MakeSelector("Random").ValueOrDie(),
                            workload.value(), options);
  auto plus = RunSelector(*MakeSelector("CompaReSetS+").ValueOrDie(),
                          workload.value(), options);
  ASSERT_TRUE(random.ok());
  ASSERT_TRUE(plus.ok());
  EXPECT_GT(plus.value().MeanAmong().rougeL.f1,
            random.value().MeanAmong().rougeL.f1);
}

TEST(RunSelectorParallelTest, MatchesSerialResults) {
  auto workload = Workload::BuildSynthetic(SmallConfig());
  ASSERT_TRUE(workload.ok());
  SelectorOptions options;
  options.m = 3;
  for (const char* name : {"CompaReSetS", "Random"}) {
    auto selector = MakeSelector(name).ValueOrDie();
    auto serial = RunSelector(*selector, workload.value(), options);
    auto parallel =
        RunSelectorParallel(*selector, workload.value(), options, 4);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel.value().results.size(),
              serial.value().results.size());
    for (size_t i = 0; i < serial.value().results.size(); ++i) {
      EXPECT_EQ(parallel.value().results[i].selections,
                serial.value().results[i].selections)
          << name << " instance " << i;
    }
    EXPECT_NEAR(parallel.value().MeanAmong().rougeL.f1,
                serial.value().MeanAmong().rougeL.f1, 1e-12);
    EXPECT_GT(parallel.value().total_seconds, 0.0);
  }
}

TEST(RunSelectorParallelTest, BitIdenticalToSerialForAllSelectors) {
  // Determinism contract: for every selector and thread count, the
  // parallel runner must reproduce RunSelector bit for bit — same
  // selections, same objective doubles, same alignment scores.
  auto workload = Workload::BuildSynthetic(SmallConfig());
  ASSERT_TRUE(workload.ok());
  SelectorOptions options;
  options.m = 3;
  size_t hardware = std::max(1u, std::thread::hardware_concurrency());
  for (const std::string& name : AllSelectorNames()) {
    auto selector = MakeSelector(name).ValueOrDie();
    auto serial = RunSelector(*selector, workload.value(), options);
    ASSERT_TRUE(serial.ok()) << name << ": " << serial.status();
    for (size_t threads : {size_t{1}, size_t{2}, hardware}) {
      auto parallel =
          RunSelectorParallel(*selector, workload.value(), options, threads);
      ASSERT_TRUE(parallel.ok()) << name << " threads=" << threads;
      ASSERT_EQ(parallel.value().results.size(),
                serial.value().results.size());
      for (size_t i = 0; i < serial.value().results.size(); ++i) {
        EXPECT_EQ(parallel.value().results[i].selections,
                  serial.value().results[i].selections)
            << name << " threads=" << threads << " instance " << i;
        EXPECT_EQ(parallel.value().results[i].objective,
                  serial.value().results[i].objective)
            << name << " threads=" << threads << " instance " << i;
        EXPECT_EQ(
            parallel.value().alignment[i].among_items.rougeL.f1,
            serial.value().alignment[i].among_items.rougeL.f1)
            << name << " threads=" << threads << " instance " << i;
      }
    }
  }
}

TEST(RunSelectorParallelTest, SingleThreadFallsBackToSerial) {
  auto workload = Workload::BuildSynthetic(SmallConfig());
  ASSERT_TRUE(workload.ok());
  SelectorOptions options;
  options.m = 2;
  auto selector = MakeSelector("Crs").ValueOrDie();
  auto run = RunSelectorParallel(*selector, workload.value(), options, 1);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().results.size(), workload.value().num_instances());
}

TEST(RunSelectorParallelTest, PropagatesErrors) {
  auto workload = Workload::BuildSynthetic(SmallConfig());
  ASSERT_TRUE(workload.ok());
  SelectorOptions options;
  options.m = 0;  // Invalid: every instance fails.
  auto selector = MakeSelector("CompaReSetS").ValueOrDie();
  auto run = RunSelectorParallel(*selector, workload.value(), options, 4);
  EXPECT_FALSE(run.ok());
}

TEST(WorkloadTest, FromCorpusRejectsLinklessCorpus) {
  Corpus corpus("lonely");
  Product p;
  p.id = "only";
  for (int r = 0; r < 3; ++r) {
    Review review;
    review.id = "r" + std::to_string(r);
    review.opinions.push_back({0, Polarity::kPositive, 1.0});
    p.reviews.push_back(review);
  }
  corpus.catalog().Intern("battery");
  corpus.AddProduct(std::move(p)).CheckOK();
  corpus.Finalize();
  auto workload = Workload::FromCorpus(std::move(corpus), RunnerConfig());
  EXPECT_FALSE(workload.ok());
}

}  // namespace
}  // namespace comparesets
