#include "linalg/nomp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "util/rng.h"

namespace comparesets {
namespace {

Matrix FromColumns(const std::vector<Vector>& columns) {
  Matrix m(columns[0].size(), columns.size());
  for (size_t c = 0; c < columns.size(); ++c) m.SetColumn(c, columns[c]);
  return m;
}

TEST(NompTest, RecoversSingleAtom) {
  Matrix v = FromColumns({{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}});
  auto result = SolveNomp(v, Vector{0.0, 2.0, 0.0}, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().support.size(), 1u);
  EXPECT_EQ(result.value().support[0], 1u);
  EXPECT_NEAR(result.value().x[1], 2.0, 1e-9);
  EXPECT_NEAR(result.value().residual_norm, 0.0, 1e-9);
}

TEST(NompTest, RecoversTwoAtomCombination) {
  Matrix v = FromColumns({{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {1.0, 1.0, 1.0}});
  Vector target = {1.0, 0.0, 0.0};
  target.Axpy(2.0, Vector{1.0, 1.0, 1.0});  // target = col0 + 2*col2.
  auto result = SolveNomp(v, target, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().residual_norm, 0.0, 1e-8);
  EXPECT_NEAR(result.value().x[0], 1.0, 1e-7);
  EXPECT_NEAR(result.value().x[2], 2.0, 1e-7);
}

TEST(NompTest, RespectsSparsityBudget) {
  Rng rng(3);
  Matrix v(6, 10);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 10; ++c) v(r, c) = rng.UniformDouble();
  }
  Vector target(6);
  for (size_t r = 0; r < 6; ++r) target[r] = rng.UniformDouble();
  for (size_t ell = 1; ell <= 4; ++ell) {
    auto result = SolveNomp(v, target, ell);
    ASSERT_TRUE(result.ok());
    size_t nonzeros = 0;
    for (size_t j = 0; j < 10; ++j) {
      if (result.value().x[j] != 0.0) ++nonzeros;
    }
    EXPECT_LE(nonzeros, ell);
  }
}

TEST(NompTest, ResidualNonIncreasingInBudget) {
  // Core property of matching pursuit: more atoms never hurt.
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix v(8, 12);
    for (size_t r = 0; r < 8; ++r) {
      for (size_t c = 0; c < 12; ++c) v(r, c) = rng.UniformDouble();
    }
    Vector target(8);
    for (size_t r = 0; r < 8; ++r) target[r] = rng.UniformDouble();
    double previous = target.NormL2() + 1e-12;
    for (size_t ell = 1; ell <= 8; ++ell) {
      auto result = SolveNomp(v, target, ell);
      ASSERT_TRUE(result.ok());
      EXPECT_LE(result.value().residual_norm, previous + 1e-9)
          << "trial " << trial << " ell " << ell;
      previous = result.value().residual_norm;
    }
  }
}

TEST(NompTest, NonNegativeCoefficients) {
  Rng rng(23);
  Matrix v(6, 8);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 8; ++c) v(r, c) = rng.Normal();
  }
  Vector target(6);
  for (size_t r = 0; r < 6; ++r) target[r] = rng.Normal();
  auto result = SolveNomp(v, target, 5);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_GE(result.value().x[j], 0.0);
  }
}

TEST(NompTest, OrthogonalTargetGivesEmptySupport) {
  // Target negatively correlated with every column: nothing selected.
  Matrix v = FromColumns({{1.0, 0.0}, {1.0, 1.0}});
  auto result = SolveNomp(v, Vector{-1.0, -1.0}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().support.empty());
  EXPECT_NEAR(result.value().residual_norm, std::sqrt(2.0), 1e-12);
}

TEST(NompTest, ZeroColumnsSkipped) {
  Matrix v = FromColumns({{0.0, 0.0}, {1.0, 0.0}});
  auto result = SolveNomp(v, Vector{2.0, 0.0}, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().support.size(), 1u);
  EXPECT_EQ(result.value().support[0], 1u);
}

TEST(NompTest, BudgetClampedToColumnCount) {
  Matrix v = FromColumns({{1.0, 0.0}});
  auto result = SolveNomp(v, Vector{1.0, 0.0}, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().support.size(), 1u);
}

TEST(NompTest, InvalidInputsRejected) {
  EXPECT_FALSE(SolveNomp(Matrix(0, 0), Vector(), 1).ok());
  EXPECT_FALSE(SolveNomp(Matrix(2, 2), Vector{1.0}, 1).ok());
  EXPECT_FALSE(SolveNomp(Matrix(2, 2), Vector{1.0, 2.0}, 0).ok());
}

TEST(NompTest, SupportOrderedBySelection) {
  // The column with the strongest *normalized* correlation is selected
  // first: col1 points exactly at the target, col0 only partially.
  Matrix v = FromColumns({{0.5, 0.5}, {1.0, 0.0}, {0.0, 1.0}});
  Vector target = {1.0, 0.0};
  auto result = SolveNomp(v, target, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result.value().support.size(), 1u);
  EXPECT_EQ(result.value().support[0], 1u);
}

TEST(NompTest, ExpiredDeadlineStopsMidSolve) {
  // An already-expired deadline trips at the first iteration boundary:
  // the solver returns kDeadlineExceeded instead of running the steps.
  Matrix v = FromColumns({{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}});
  Deadline deadline(1e-12);
  while (!deadline.Expired()) {
  }
  ExecControl control;
  control.deadline = &deadline;
  auto result = SolveNomp(v, Vector{0.0, 2.0, 0.0}, 1, &control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(NompTest, CancellationStopsMidSolve) {
  Matrix v = FromColumns({{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}});
  CancelToken cancel;
  cancel.Cancel();
  ExecControl control;
  control.cancel = &cancel;
  auto result = SolveNomp(v, Vector{0.0, 2.0, 0.0}, 1, &control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(NompTest, ControlledSolveMatchesUncontrolledBitForBit) {
  // Threading a live (never-tripping) control through the solver must
  // not change the numerics at all.
  Rng rng(11);
  Matrix v(6, 10);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 10; ++c) v(r, c) = rng.UniformDouble();
  }
  Vector target(6);
  for (size_t r = 0; r < 6; ++r) target[r] = rng.UniformDouble();

  Deadline deadline(0.0);  // Unlimited.
  std::atomic<uint64_t> iterations{0};
  ExecControl control;
  control.deadline = &deadline;
  control.iterations = &iterations;

  auto plain = SolveNomp(v, target, 3);
  auto controlled = SolveNomp(v, target, 3, &control);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(controlled.ok());
  EXPECT_EQ(plain.value().support, controlled.value().support);
  for (size_t i = 0; i < plain.value().x.size(); ++i) {
    EXPECT_EQ(plain.value().x[i], controlled.value().x[i]) << i;
  }
  EXPECT_EQ(plain.value().residual_norm, controlled.value().residual_norm);
  EXPECT_GT(iterations.load(), 0u);  // The checks actually ran.
}

TEST(NompTest, TiedCorrelationsBreakToFirstColumn) {
  // Parallel columns tie on normalized correlation; the deterministic
  // tie-break keeps the lowest index.
  Matrix v = FromColumns({{0.1, 0.0}, {1.0, 0.0}});
  auto result = SolveNomp(v, Vector{1.0, 0.0}, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().support.size(), 1u);
  EXPECT_EQ(result.value().support[0], 0u);
}

}  // namespace
}  // namespace comparesets
