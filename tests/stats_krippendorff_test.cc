#include "stats/krippendorff.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace comparesets {
namespace {

std::optional<double> R(double v) { return v; }
constexpr std::nullopt_t NA = std::nullopt;

TEST(KrippendorffTest, PerfectAgreementIsOne) {
  RatingsMatrix ratings = {
      {R(1), R(2), R(3), R(4)},
      {R(1), R(2), R(3), R(4)},
      {R(1), R(2), R(3), R(4)},
  };
  for (AlphaMetric metric :
       {AlphaMetric::kNominal, AlphaMetric::kOrdinal, AlphaMetric::kInterval}) {
    auto alpha = KrippendorffAlpha(ratings, metric);
    ASSERT_TRUE(alpha.ok());
    EXPECT_NEAR(alpha.value(), 1.0, 1e-12);
  }
}

TEST(KrippendorffTest, AllIdenticalValuesIsOneByConvention) {
  RatingsMatrix ratings = {{R(3), R(3)}, {R(3), R(3)}};
  auto alpha = KrippendorffAlpha(ratings, AlphaMetric::kInterval);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(alpha.value(), 1.0);
}

TEST(KrippendorffTest, KnownNominalExample) {
  // Two observers over 10 pairable units (2 unrated): coincidences
  // o_00 = 12, o_11 = 4, o_01 = o_10 = 2, marginals n_0 = 14, n_1 = 6,
  // n = 20. D_o = 4, D_e = 2·14·6/19, α = 1 − 4·19/168 = 0.547619…
  RatingsMatrix ratings = {
      {R(0), R(1), R(0), R(0), R(0), R(0), R(0), R(0), R(1), R(0), NA, NA},
      {R(0), R(1), R(1), R(0), R(0), R(1), R(0), R(0), R(1), R(0), NA, NA},
  };
  auto alpha = KrippendorffAlpha(ratings, AlphaMetric::kNominal);
  ASSERT_TRUE(alpha.ok());
  EXPECT_NEAR(alpha.value(), 1.0 - 4.0 * 19.0 / 168.0, 1e-12);
}

TEST(KrippendorffTest, SystematicDisagreementIsNegative) {
  // Raters always disagree: α < 0 (worse than chance).
  RatingsMatrix ratings = {
      {R(1), R(2), R(1), R(2), R(1), R(2)},
      {R(2), R(1), R(2), R(1), R(2), R(1)},
  };
  auto alpha = KrippendorffAlpha(ratings, AlphaMetric::kNominal);
  ASSERT_TRUE(alpha.ok());
  EXPECT_LT(alpha.value(), 0.0);
}

TEST(KrippendorffTest, RandomRatingsNearZero) {
  Rng rng(5);
  RatingsMatrix ratings(4, std::vector<std::optional<double>>(300));
  for (auto& row : ratings) {
    for (auto& cell : row) cell = static_cast<double>(rng.UniformInt(1, 5));
  }
  auto alpha = KrippendorffAlpha(ratings, AlphaMetric::kInterval);
  ASSERT_TRUE(alpha.ok());
  EXPECT_NEAR(alpha.value(), 0.0, 0.06);
}

TEST(KrippendorffTest, IntervalPenalizesLargeGapsMore) {
  // Off-by-one disagreements (interval) hurt less than far-apart ones.
  RatingsMatrix close = {
      {R(1), R(2), R(3), R(4), R(5), R(1), R(3)},
      {R(2), R(3), R(2), R(5), R(4), R(1), R(3)},
  };
  RatingsMatrix far = {
      {R(1), R(2), R(3), R(4), R(5), R(1), R(3)},
      {R(5), R(5), R(1), R(1), R(1), R(5), R(3)},
  };
  auto alpha_close = KrippendorffAlpha(close, AlphaMetric::kInterval);
  auto alpha_far = KrippendorffAlpha(far, AlphaMetric::kInterval);
  ASSERT_TRUE(alpha_close.ok());
  ASSERT_TRUE(alpha_far.ok());
  EXPECT_GT(alpha_close.value(), alpha_far.value());
}

TEST(KrippendorffTest, MissingDataTolerated) {
  RatingsMatrix ratings = {
      {R(1), R(2), NA, R(4)},
      {R(1), NA, R(3), R(4)},
      {NA, R(2), R(3), R(4)},
  };
  auto alpha = KrippendorffAlpha(ratings, AlphaMetric::kInterval);
  ASSERT_TRUE(alpha.ok());
  EXPECT_NEAR(alpha.value(), 1.0, 1e-12);  // All pairable values agree.
}

TEST(KrippendorffTest, UnpairableUnitsExcluded) {
  // Unit 1 has a single rating: it cannot contribute.
  RatingsMatrix with_solo = {
      {R(1), R(5), R(2)},
      {R(1), NA, R(2)},
  };
  RatingsMatrix without = {
      {R(1), R(2)},
      {R(1), R(2)},
  };
  auto a = KrippendorffAlpha(with_solo, AlphaMetric::kInterval);
  auto b = KrippendorffAlpha(without, AlphaMetric::kInterval);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a.value(), b.value(), 1e-12);
}

TEST(KrippendorffTest, DegenerateInputsRejected) {
  EXPECT_FALSE(KrippendorffAlpha({}).ok());
  EXPECT_FALSE(KrippendorffAlpha({{}, {}}).ok());
  RatingsMatrix ragged = {{R(1), R(2)}, {R(1)}};
  EXPECT_FALSE(KrippendorffAlpha(ragged).ok());
  RatingsMatrix all_missing = {{NA, NA}, {NA, NA}};
  EXPECT_FALSE(KrippendorffAlpha(all_missing).ok());
  RatingsMatrix no_pairs = {{R(1), NA}, {NA, R(2)}};
  EXPECT_FALSE(KrippendorffAlpha(no_pairs).ok());
}

TEST(KrippendorffTest, OrdinalDiffersFromInterval) {
  // With skewed marginals, ordinal and interval metrics disagree.
  RatingsMatrix ratings = {
      {R(1), R(1), R(1), R(1), R(5), R(2)},
      {R(1), R(1), R(1), R(2), R(4), R(2)},
  };
  auto ordinal = KrippendorffAlpha(ratings, AlphaMetric::kOrdinal);
  auto interval = KrippendorffAlpha(ratings, AlphaMetric::kInterval);
  ASSERT_TRUE(ordinal.ok());
  ASSERT_TRUE(interval.ok());
  EXPECT_NE(ordinal.value(), interval.value());
  EXPECT_GE(ordinal.value(), -1.0);
  EXPECT_LE(ordinal.value(), 1.0);
}

}  // namespace
}  // namespace comparesets
