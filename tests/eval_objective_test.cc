#include "eval/objective.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace comparesets {
namespace {

class ObjectiveTest : public ::testing::Test {
 protected:
  ObjectiveTest()
      : corpus_(testing::WorkingExampleCorpus()),
        instance_(testing::WorkingExampleInstance(corpus_)),
        vectors_(BuildInstanceVectors(OpinionModel::Binary(5), instance_)) {}

  Corpus corpus_;
  ProblemInstance instance_;
  InstanceVectors vectors_;
};

TEST_F(ObjectiveTest, FullSetSelectionHasZeroCost) {
  // Selecting every review makes π(S) = τ and φ(S) = Γ-for-the-target:
  // identity reconstruction invariant.
  Selection all_target = {0, 1, 2, 3, 4, 5};
  EXPECT_NEAR(SquaredDistance(vectors_.tau[0],
                              vectors_.OpinionOf(0, all_target)),
              0.0, 1e-12);
  EXPECT_NEAR(ItemCost(vectors_, 0, all_target, 1.0), 0.0, 1e-12);
}

TEST_F(ObjectiveTest, ItemCostCombinesOpinionAndAspectTerms) {
  Selection partial = {2};  // {battery−} only.
  double lambda = 2.0;
  double expected =
      SquaredDistance(vectors_.tau[0], vectors_.OpinionOf(0, partial)) +
      lambda * lambda *
          SquaredDistance(vectors_.gamma, vectors_.AspectOf(0, partial));
  EXPECT_NEAR(ItemCost(vectors_, 0, partial, lambda), expected, 1e-12);
}

TEST_F(ObjectiveTest, LambdaZeroDropsAspectTerm) {
  Selection partial = {2};
  double cost = ItemCost(vectors_, 0, partial, 0.0);
  EXPECT_NEAR(cost, SquaredDistance(vectors_.tau[0],
                                    vectors_.OpinionOf(0, partial)),
              1e-12);
}

TEST_F(ObjectiveTest, CompareSetsObjectiveIsSumOfItemCosts) {
  std::vector<Selection> selections = {{0, 1}, {0, 2}, {1, 3}};
  double lambda = 1.5;
  double total = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    total += ItemCost(vectors_, i, selections[i], lambda);
  }
  EXPECT_NEAR(CompareSetsObjective(vectors_, selections, lambda), total,
              1e-12);
}

TEST_F(ObjectiveTest, PlusObjectiveAddsPairwiseTermsOnly) {
  std::vector<Selection> selections = {{0, 1}, {0, 2}, {1, 3}};
  double lambda = 1.0;
  double mu = 0.5;
  double base = CompareSetsObjective(vectors_, selections, lambda);
  double plus = CompareSetsPlusObjective(vectors_, selections, lambda, mu);
  EXPECT_GE(plus, base - 1e-12);

  // μ = 0 makes them identical.
  EXPECT_NEAR(CompareSetsPlusObjective(vectors_, selections, lambda, 0.0),
              base, 1e-12);
}

TEST_F(ObjectiveTest, PlusObjectiveMatchesManualExpansion) {
  std::vector<Selection> selections = {{0}, {1}, {2}};
  double lambda = 1.0;
  double mu = 0.3;
  SelectionVectors sv = BuildSelectionVectors(vectors_, selections);
  double expected = CompareSetsObjective(vectors_, selections, lambda);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = i + 1; j < 3; ++j) {
      expected += mu * mu * SquaredDistance(sv.phi[i], sv.phi[j]);
    }
  }
  EXPECT_NEAR(CompareSetsPlusObjective(vectors_, selections, lambda, mu),
              expected, 1e-12);
}

TEST_F(ObjectiveTest, PairDistanceSymmetric) {
  std::vector<Selection> selections = {{0, 1}, {0, 2}, {1, 3}};
  double d01 = ItemPairDistance(vectors_, selections, 0, 1, 1.0, 0.1);
  double d10 = ItemPairDistance(vectors_, selections, 1, 0, 1.0, 0.1);
  EXPECT_NEAR(d01, d10, 1e-12);
}

TEST_F(ObjectiveTest, PairDistanceDecomposition) {
  std::vector<Selection> selections = {{0, 1}, {0, 2}, {1, 3}};
  double lambda = 1.0;
  double mu = 0.2;
  double d = ItemPairDistance(vectors_, selections, 0, 2, lambda, mu);
  SelectionVectors sv = BuildSelectionVectors(vectors_, selections);
  double expected =
      SquaredDistance(vectors_.tau[0], sv.pi[0]) +
      SquaredDistance(vectors_.tau[2], sv.pi[2]) +
      SquaredDistance(vectors_.gamma, sv.phi[0]) +
      SquaredDistance(vectors_.gamma, sv.phi[2]) +
      mu * mu * SquaredDistance(sv.phi[0], sv.phi[2]);
  EXPECT_NEAR(d, expected, 1e-12);
}

TEST_F(ObjectiveTest, SelectionVectorsMatchDirectComputation) {
  std::vector<Selection> selections = {{1, 3}, {0}, {2, 4}};
  SelectionVectors sv = BuildSelectionVectors(vectors_, selections);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(sv.pi[i].AlmostEquals(vectors_.OpinionOf(i, selections[i])));
    EXPECT_TRUE(sv.phi[i].AlmostEquals(vectors_.AspectOf(i, selections[i])));
  }
}

}  // namespace
}  // namespace comparesets
