#include "service/engine.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/runner.h"

namespace comparesets {
namespace {

std::shared_ptr<const IndexedCorpus> MakeCorpus(size_t products,
                                                uint64_t seed = 42) {
  auto config = DefaultConfig("Cellphone", products);
  config.status().CheckOK();
  config.value().seed = seed;
  auto corpus = GenerateCorpus(config.value());
  corpus.status().CheckOK();
  return IndexedCorpus::Build(std::move(corpus).value()).ValueOrDie();
}

SelectRequest RequestFor(const IndexedCorpus& corpus, size_t instance,
                         const std::string& selector = "CompaReSetS") {
  SelectRequest request;
  request.target_id = corpus.instances()[instance].target().id;
  request.selector = selector;
  return request;
}

TEST(SelectionEngineTest, SelectAnswersKnownTarget) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  auto response = engine.Select(RequestFor(*corpus, 0));
  ASSERT_TRUE(response.ok()) << response.status();
  const SelectResponse& r = response.value();
  EXPECT_EQ(r.target_id, corpus->instances()[0].target().id);
  EXPECT_EQ(r.item_ids.size(), corpus->instances()[0].num_items());
  EXPECT_EQ(r.selections.size(), r.item_ids.size());
  for (const Selection& s : r.selections) {
    EXPECT_GE(s.size(), 1u);
    EXPECT_LE(s.size(), 3u);  // Default m.
  }
  EXPECT_FALSE(r.cache_hit);
  EXPECT_GT(r.prepare_seconds, 0.0);
  EXPECT_GT(r.alignment.among_pairs, 0u);
}

TEST(SelectionEngineTest, UnknownSelectorReturnsStatus) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  SelectRequest request = RequestFor(*corpus, 0, "Frobnicator");
  auto response = engine.Select(request);
  EXPECT_FALSE(response.ok());
}

TEST(SelectionEngineTest, UnknownTargetReturnsNotFound) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  SelectRequest request;
  request.target_id = "no-such-product";
  auto response = engine.Select(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);

  SelectRequest empty;
  EXPECT_EQ(engine.Select(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SelectionEngineTest, ExplicitComparativeSet) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  const ProblemInstance& instance = corpus->instances()[0];

  SelectRequest request;
  request.target_id = instance.target().id;
  request.comparative_ids = {instance.items[1]->id, instance.items[2]->id};
  auto response = engine.Select(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value().item_ids.size(), 3u);
  EXPECT_EQ(response.value().item_ids[1], instance.items[1]->id);

  request.comparative_ids = {"no-such-product"};
  EXPECT_EQ(engine.Select(request).status().code(), StatusCode::kNotFound);

  request.comparative_ids = {instance.target().id};
  EXPECT_EQ(engine.Select(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SelectionEngineTest, RepeatedQueryHitsCacheWithIdenticalResult) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  SelectRequest request = RequestFor(*corpus, 0, "CompaReSetS+");

  auto cold = engine.Select(request);
  auto warm = engine.Select(request);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(cold.value().cache_hit);
  EXPECT_FALSE(cold.value().result_cache_hit);
  // An exact repeat is served whole from the result memo (no solve, no
  // vector-cache traffic).
  EXPECT_TRUE(warm.value().cache_hit);
  EXPECT_TRUE(warm.value().result_cache_hit);
  EXPECT_EQ(warm.value().solve_seconds, 0.0);
  EXPECT_EQ(cold.value().selections, warm.value().selections);
  EXPECT_EQ(cold.value().objective, warm.value().objective);

  VectorCacheStats stats = engine.CacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);

  // Same instance but different m: the memo misses (options are part of
  // its key) while the prepared vectors are reused.
  request.options.m = 2;
  auto vector_warm = engine.Select(request);
  ASSERT_TRUE(vector_warm.ok());
  EXPECT_TRUE(vector_warm.value().cache_hit);
  EXPECT_FALSE(vector_warm.value().result_cache_hit);
  EXPECT_EQ(engine.CacheStats().hits, 1u);
}

TEST(SelectionEngineTest, ResultMemoCanBeDisabled) {
  auto corpus = MakeCorpus(60);
  EngineOptions options;
  options.result_capacity = 0;
  SelectionEngine engine(corpus, options);
  SelectRequest request = RequestFor(*corpus, 0);

  auto cold = engine.Select(request);
  auto warm = engine.Select(request);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(warm.value().result_cache_hit);
  EXPECT_TRUE(warm.value().cache_hit);  // The vector cache still serves.
  EXPECT_EQ(cold.value().selections, warm.value().selections);
  EXPECT_EQ(cold.value().objective, warm.value().objective);
}

TEST(SelectionEngineTest, ResultMemoEvictsAtCapacity) {
  auto corpus = MakeCorpus(80);
  EngineOptions options;
  options.result_capacity = 1;
  SelectionEngine engine(corpus, options);
  ASSERT_GE(corpus->num_instances(), 2u);
  SelectRequest first = RequestFor(*corpus, 0);
  SelectRequest second = RequestFor(*corpus, 1);

  ASSERT_TRUE(engine.Select(first).ok());
  ASSERT_TRUE(engine.Select(second).ok());  // Evicts `first` (capacity 1).

  auto again = engine.Select(first);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().result_cache_hit);
  EXPECT_TRUE(again.value().cache_hit);  // Vectors survived in their cache.
  EXPECT_TRUE(engine.Select(first).value().result_cache_hit);
}

TEST(SelectionEngineTest, BatchMatchesSequentialSelects) {
  auto corpus = MakeCorpus(80);
  EngineOptions options;
  options.threads = 4;
  SelectionEngine engine(corpus, options);

  std::vector<SelectRequest> requests;
  size_t n = std::min<size_t>(corpus->num_instances(), 8);
  for (size_t i = 0; i < n; ++i) {
    for (const char* selector : {"Crs", "CompaReSetS", "CompaReSetS+"}) {
      requests.push_back(RequestFor(*corpus, i, selector));
    }
  }
  // One bad request must not poison the batch.
  SelectRequest bad;
  bad.target_id = "no-such-product";
  requests.push_back(bad);

  std::vector<Result<SelectResponse>> batch = engine.SelectBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  EXPECT_FALSE(batch.back().ok());

  for (size_t i = 0; i + 1 < requests.size(); ++i) {
    auto sequential = engine.Select(requests[i]);
    ASSERT_TRUE(batch[i].ok()) << batch[i].status();
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(batch[i].value().selections, sequential.value().selections)
        << "request " << i;
    EXPECT_EQ(batch[i].value().objective, sequential.value().objective);
    EXPECT_EQ(batch[i].value().item_ids, sequential.value().item_ids);
  }
}

TEST(SelectionEngineTest, SwapCorpusInvalidatesCacheAndServesNewCatalog) {
  auto old_corpus = MakeCorpus(60, /*seed=*/42);
  SelectionEngine engine(old_corpus);
  SelectRequest request = RequestFor(*old_corpus, 0);
  ASSERT_TRUE(engine.Select(request).ok());
  EXPECT_EQ(engine.CacheStats().entries, 1u);

  // Same generator config, different seed: same id space, different
  // reviews — a stale vector entry would silently answer from the old
  // catalog.
  auto new_corpus = MakeCorpus(60, /*seed=*/7);
  engine.SwapCorpus(new_corpus);
  EXPECT_EQ(engine.corpus(), new_corpus);
  EXPECT_EQ(engine.CacheStats().entries, 0u);

  auto response = engine.Select(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response.value().cache_hit);  // Rebuilt, not stale.

  // And the rebuilt entry reflects the new snapshot's review set.
  auto reference = SelectionEngine(new_corpus).Select(request);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(response.value().selections, reference.value().selections);
  EXPECT_EQ(response.value().objective, reference.value().objective);
}

TEST(SelectionEngineTest, CacheEvictionRespectsCapacity) {
  auto corpus = MakeCorpus(80);
  EngineOptions options;
  options.cache_capacity = 2;
  SelectionEngine engine(corpus, options);
  size_t n = std::min<size_t>(corpus->num_instances(), 4);
  ASSERT_GE(n, 3u);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(engine.Select(RequestFor(*corpus, i)).ok());
  }
  VectorCacheStats stats = engine.CacheStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, n - 2);
}

TEST(SelectionEngineTest, MetricsDumpCoversRequestCounters) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  SelectRequest request = RequestFor(*corpus, 0);
  ASSERT_TRUE(engine.Select(request).ok());
  ASSERT_TRUE(engine.Select(request).ok());

  std::string dump = engine.DumpMetrics();
  EXPECT_NE(dump.find("counter engine.requests 2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("counter engine.cache_misses 1"), std::string::npos);
  EXPECT_NE(dump.find("counter engine.result_hits 1"), std::string::npos);
  EXPECT_NE(dump.find("counter engine.result_misses 1"), std::string::npos);
  EXPECT_NE(dump.find("histogram engine.solve_seconds"), std::string::npos);
  EXPECT_NE(dump.find("gauge cache.entries 1"), std::string::npos);
  EXPECT_NE(dump.find("gauge result_cache.entries 1"), std::string::npos);
}

// Acceptance parity: over a 240-product synthetic workload, the batched
// engine path must reproduce the pre-refactor RunSelector results for
// every selector, bit for bit.
TEST(SelectionEngineTest, MatchesRunSelectorOver240ProductWorkload) {
  RunnerConfig config;
  config.category = "Cellphone";
  config.num_products = 240;
  config.max_instances = 20;
  auto workload = Workload::BuildSynthetic(config);
  ASSERT_TRUE(workload.ok()) << workload.status();

  EngineOptions engine_options;
  engine_options.threads = 2;
  engine_options.cache_capacity = 64;
  SelectionEngine engine(workload.value().indexed_corpus(), engine_options);

  for (const std::string& name : AllSelectorNames()) {
    SelectorOptions options;
    options.m = 3;
    auto selector = MakeSelector(name).ValueOrDie();
    auto reference = RunSelector(*selector, workload.value(), options);
    ASSERT_TRUE(reference.ok()) << reference.status();

    std::vector<SelectRequest> requests;
    for (size_t i = 0; i < workload.value().num_instances(); ++i) {
      SelectRequest request;
      request.target_id = workload.value().instances()[i].target().id;
      request.selector = name;
      request.options = options;
      requests.push_back(std::move(request));
    }
    std::vector<Result<SelectResponse>> responses =
        engine.SelectBatch(requests);
    ASSERT_EQ(responses.size(), reference.value().results.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok()) << responses[i].status();
      EXPECT_EQ(responses[i].value().selections,
                reference.value().results[i].selections)
          << name << " instance " << i;
      EXPECT_EQ(responses[i].value().objective,
                reference.value().results[i].objective)
          << name << " instance " << i;
    }
  }
}

}  // namespace
}  // namespace comparesets
