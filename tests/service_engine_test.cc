#include "service/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "data/synthetic.h"
#include "eval/runner.h"
#include "opinion/vectors.h"

namespace comparesets {
namespace {

std::shared_ptr<const IndexedCorpus> MakeCorpus(size_t products,
                                                uint64_t seed = 42) {
  auto config = DefaultConfig("Cellphone", products);
  config.status().CheckOK();
  config.value().seed = seed;
  auto corpus = GenerateCorpus(config.value());
  corpus.status().CheckOK();
  return IndexedCorpus::Build(std::move(corpus).value()).ValueOrDie();
}

SelectRequest RequestFor(const IndexedCorpus& corpus, size_t instance,
                         const std::string& selector = "CompaReSetS") {
  SelectRequest request;
  request.target_id = corpus.instances()[instance].target().id;
  request.selector = selector;
  return request;
}

TEST(SelectionEngineTest, SelectAnswersKnownTarget) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  auto response = engine.Select(RequestFor(*corpus, 0));
  ASSERT_TRUE(response.ok()) << response.status();
  const SelectResponse& r = response.value();
  EXPECT_EQ(r.target_id, corpus->instances()[0].target().id);
  EXPECT_EQ(r.item_ids.size(), corpus->instances()[0].num_items());
  EXPECT_EQ(r.selections.size(), r.item_ids.size());
  for (const Selection& s : r.selections) {
    EXPECT_GE(s.size(), 1u);
    EXPECT_LE(s.size(), 3u);  // Default m.
  }
  EXPECT_FALSE(r.cache_hit);
  EXPECT_GT(r.prepare_seconds, 0.0);
  EXPECT_GT(r.alignment.among_pairs, 0u);
}

TEST(SelectionEngineTest, UnknownSelectorReturnsStatus) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  SelectRequest request = RequestFor(*corpus, 0, "Frobnicator");
  auto response = engine.Select(request);
  EXPECT_FALSE(response.ok());
}

TEST(SelectionEngineTest, UnknownTargetReturnsNotFound) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  SelectRequest request;
  request.target_id = "no-such-product";
  auto response = engine.Select(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);

  SelectRequest empty;
  EXPECT_EQ(engine.Select(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SelectionEngineTest, ExplicitComparativeSet) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  const ProblemInstance& instance = corpus->instances()[0];

  SelectRequest request;
  request.target_id = instance.target().id;
  request.comparative_ids = {instance.items[1]->id, instance.items[2]->id};
  auto response = engine.Select(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value().item_ids.size(), 3u);
  EXPECT_EQ(response.value().item_ids[1], instance.items[1]->id);

  request.comparative_ids = {"no-such-product"};
  EXPECT_EQ(engine.Select(request).status().code(), StatusCode::kNotFound);

  request.comparative_ids = {instance.target().id};
  EXPECT_EQ(engine.Select(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SelectionEngineTest, RepeatedQueryHitsCacheWithIdenticalResult) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  SelectRequest request = RequestFor(*corpus, 0, "CompaReSetS+");

  auto cold = engine.Select(request);
  auto warm = engine.Select(request);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(cold.value().cache_hit);
  EXPECT_FALSE(cold.value().result_cache_hit);
  // An exact repeat is served whole from the result memo (no solve, no
  // vector-cache traffic).
  EXPECT_TRUE(warm.value().cache_hit);
  EXPECT_TRUE(warm.value().result_cache_hit);
  EXPECT_EQ(warm.value().solve_seconds, 0.0);
  EXPECT_EQ(cold.value().selections, warm.value().selections);
  EXPECT_EQ(cold.value().objective, warm.value().objective);

  VectorCacheStats stats = engine.CacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);

  // Same instance but different m: the memo misses (options are part of
  // its key) while the prepared vectors are reused.
  request.options.m = 2;
  auto vector_warm = engine.Select(request);
  ASSERT_TRUE(vector_warm.ok());
  EXPECT_TRUE(vector_warm.value().cache_hit);
  EXPECT_FALSE(vector_warm.value().result_cache_hit);
  EXPECT_EQ(engine.CacheStats().hits, 1u);
}

TEST(SelectionEngineTest, ResultMemoCanBeDisabled) {
  auto corpus = MakeCorpus(60);
  EngineOptions options;
  options.result_capacity = 0;
  SelectionEngine engine(corpus, options);
  SelectRequest request = RequestFor(*corpus, 0);

  auto cold = engine.Select(request);
  auto warm = engine.Select(request);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(warm.value().result_cache_hit);
  EXPECT_TRUE(warm.value().cache_hit);  // The vector cache still serves.
  EXPECT_EQ(cold.value().selections, warm.value().selections);
  EXPECT_EQ(cold.value().objective, warm.value().objective);
}

TEST(SelectionEngineTest, ResultMemoEvictsAtCapacity) {
  auto corpus = MakeCorpus(80);
  EngineOptions options;
  options.result_capacity = 1;
  SelectionEngine engine(corpus, options);
  ASSERT_GE(corpus->num_instances(), 2u);
  SelectRequest first = RequestFor(*corpus, 0);
  SelectRequest second = RequestFor(*corpus, 1);

  ASSERT_TRUE(engine.Select(first).ok());
  ASSERT_TRUE(engine.Select(second).ok());  // Evicts `first` (capacity 1).

  auto again = engine.Select(first);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().result_cache_hit);
  EXPECT_TRUE(again.value().cache_hit);  // Vectors survived in their cache.
  EXPECT_TRUE(engine.Select(first).value().result_cache_hit);
}

TEST(SelectionEngineTest, BatchMatchesSequentialSelects) {
  auto corpus = MakeCorpus(80);
  EngineOptions options;
  options.threads = 4;
  SelectionEngine engine(corpus, options);

  std::vector<SelectRequest> requests;
  size_t n = std::min<size_t>(corpus->num_instances(), 8);
  for (size_t i = 0; i < n; ++i) {
    for (const char* selector : {"Crs", "CompaReSetS", "CompaReSetS+"}) {
      requests.push_back(RequestFor(*corpus, i, selector));
    }
  }
  // One bad request must not poison the batch.
  SelectRequest bad;
  bad.target_id = "no-such-product";
  requests.push_back(bad);

  std::vector<Result<SelectResponse>> batch = engine.SelectBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  EXPECT_FALSE(batch.back().ok());

  for (size_t i = 0; i + 1 < requests.size(); ++i) {
    auto sequential = engine.Select(requests[i]);
    ASSERT_TRUE(batch[i].ok()) << batch[i].status();
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(batch[i].value().selections, sequential.value().selections)
        << "request " << i;
    EXPECT_EQ(batch[i].value().objective, sequential.value().objective);
    EXPECT_EQ(batch[i].value().item_ids, sequential.value().item_ids);
  }
}

TEST(SelectionEngineTest, SwapCorpusInvalidatesCacheAndServesNewCatalog) {
  auto old_corpus = MakeCorpus(60, /*seed=*/42);
  SelectionEngine engine(old_corpus);
  SelectRequest request = RequestFor(*old_corpus, 0);
  ASSERT_TRUE(engine.Select(request).ok());
  EXPECT_EQ(engine.CacheStats().entries, 1u);

  // Same generator config, different seed: same id space, different
  // reviews — a stale vector entry would silently answer from the old
  // catalog.
  auto new_corpus = MakeCorpus(60, /*seed=*/7);
  ASSERT_TRUE(engine.SwapCorpus(new_corpus).ok());
  EXPECT_EQ(engine.corpus(), new_corpus);
  EXPECT_EQ(engine.CacheStats().entries, 0u);

  auto response = engine.Select(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response.value().cache_hit);  // Rebuilt, not stale.

  // And the rebuilt entry reflects the new snapshot's review set.
  auto reference = SelectionEngine(new_corpus).Select(request);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(response.value().selections, reference.value().selections);
  EXPECT_EQ(response.value().objective, reference.value().objective);
}

TEST(SelectionEngineTest, CacheEvictionRespectsCapacity) {
  auto corpus = MakeCorpus(80);
  EngineOptions options;
  options.cache_capacity = 2;
  SelectionEngine engine(corpus, options);
  size_t n = std::min<size_t>(corpus->num_instances(), 4);
  ASSERT_GE(n, 3u);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(engine.Select(RequestFor(*corpus, i)).ok());
  }
  VectorCacheStats stats = engine.CacheStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, n - 2);
}

TEST(SelectionEngineTest, MetricsDumpCoversRequestCounters) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  SelectRequest request = RequestFor(*corpus, 0);
  ASSERT_TRUE(engine.Select(request).ok());
  ASSERT_TRUE(engine.Select(request).ok());

  std::string dump = engine.DumpMetrics();
  EXPECT_NE(dump.find("counter engine.requests 2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("counter engine.cache_misses 1"), std::string::npos);
  EXPECT_NE(dump.find("counter engine.result_hits 1"), std::string::npos);
  EXPECT_NE(dump.find("counter engine.result_misses 1"), std::string::npos);
  EXPECT_NE(dump.find("histogram engine.solve_seconds"), std::string::npos);
  EXPECT_NE(dump.find("gauge cache.entries 1"), std::string::npos);
  EXPECT_NE(dump.find("gauge result_cache.entries 1"), std::string::npos);
}

// Acceptance parity: over a 240-product synthetic workload, the batched
// engine path must reproduce the pre-refactor RunSelector results for
// every selector, bit for bit.
TEST(SelectionEngineTest, MatchesRunSelectorOver240ProductWorkload) {
  RunnerConfig config;
  config.category = "Cellphone";
  config.num_products = 240;
  config.max_instances = 20;
  auto workload = Workload::BuildSynthetic(config);
  ASSERT_TRUE(workload.ok()) << workload.status();

  EngineOptions engine_options;
  engine_options.threads = 2;
  engine_options.cache_capacity = 64;
  SelectionEngine engine(workload.value().indexed_corpus(), engine_options);

  for (const std::string& name : AllSelectorNames()) {
    SelectorOptions options;
    options.m = 3;
    auto selector = MakeSelector(name).ValueOrDie();
    auto reference = RunSelector(*selector, workload.value(), options);
    ASSERT_TRUE(reference.ok()) << reference.status();

    std::vector<SelectRequest> requests;
    for (size_t i = 0; i < workload.value().num_instances(); ++i) {
      SelectRequest request;
      request.target_id = workload.value().instances()[i].target().id;
      request.selector = name;
      request.options = options;
      requests.push_back(std::move(request));
    }
    std::vector<Result<SelectResponse>> responses =
        engine.SelectBatch(requests);
    ASSERT_EQ(responses.size(), reference.value().results.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok()) << responses[i].status();
      EXPECT_EQ(responses[i].value().selections,
                reference.value().results[i].selections)
          << name << " instance " << i;
      EXPECT_EQ(responses[i].value().objective,
                reference.value().results[i].objective)
          << name << " instance " << i;
    }
  }
}

// Acceptance: a 1ms-deadline request fails fast with kDeadlineExceeded
// (the deadline trips inside the NOMP/NNLS iteration checks, it does
// not hang a worker), while the identical request without a deadline
// still produces the selections a bare selector run yields, bit for
// bit — the control plumbing must not perturb the numerics.
TEST(SelectionEngineTest, DeadlineExpiryFailsFastAndCleanRequestIsExact) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);

  SelectRequest request = RequestFor(*corpus, 0, "CompaReSetS+");
  request.deadline_seconds = 0.001;
  auto expired = engine.Select(request);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);

  request.deadline_seconds = 0.0;
  auto clean = engine.Select(request);
  ASSERT_TRUE(clean.ok()) << clean.status();
  // A failed attempt must never have been memoized.
  EXPECT_FALSE(clean.value().result_cache_hit);

  auto selector = MakeSelector("CompaReSetS+").ValueOrDie();
  OpinionModel model = OpinionModel::Binary(corpus->num_aspects());
  InstanceVectors vectors =
      BuildInstanceVectors(model, corpus->instances()[0]);
  auto reference = selector->Select(vectors, request.options);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(clean.value().selections, reference.value().selections);
  EXPECT_EQ(clean.value().objective, reference.value().objective);

  std::string dump = engine.DumpMetrics();
  EXPECT_NE(dump.find("counter engine.deadline_exceeded 1"),
            std::string::npos)
      << dump;
}

TEST(SelectionEngineTest, PreCancelledRequestReturnsCancelled) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  CancelToken cancel;
  cancel.Cancel();

  SelectRequest request = RequestFor(*corpus, 0);
  request.cancel = &cancel;
  auto response = engine.Select(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled);
}

// Cancellation racing a SelectBatch must leave the engine's warm state
// consistent: every response is either ok or kCancelled, and re-issuing
// the batch afterwards (caches now populated by whichever requests
// finished) still reproduces a fresh engine's answers exactly.
TEST(SelectionEngineTest, CancellationDuringBatchLeavesCachesUncorrupted) {
  auto corpus = MakeCorpus(80);
  EngineOptions options;
  options.threads = 2;
  SelectionEngine engine(corpus, options);

  size_t n = std::min<size_t>(corpus->num_instances(), 6);
  CancelToken cancel;
  std::vector<SelectRequest> requests;
  for (size_t i = 0; i < n; ++i) {
    SelectRequest request = RequestFor(*corpus, i, "CompaReSetS+");
    request.cancel = &cancel;
    requests.push_back(std::move(request));
  }

  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.Cancel();
  });
  std::vector<Result<SelectResponse>> racing = engine.SelectBatch(requests);
  canceller.join();
  for (const auto& response : racing) {
    if (!response.ok()) {
      EXPECT_EQ(response.status().code(), StatusCode::kCancelled);
    }
  }

  // Clean re-run through the now part-warm engine vs a cold engine.
  for (SelectRequest& request : requests) request.cancel = nullptr;
  std::vector<Result<SelectResponse>> warm = engine.SelectBatch(requests);
  SelectionEngine cold_engine(corpus, options);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(warm[i].ok()) << warm[i].status();
    auto cold = cold_engine.Select(requests[i]);
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(warm[i].value().selections, cold.value().selections) << i;
    EXPECT_EQ(warm[i].value().objective, cold.value().objective) << i;
  }
}

TEST(SelectionEngineTest, TransientFaultsAreRetriedWithBackoff) {
  auto corpus = MakeCorpus(60);
  FaultPlan plan;
  plan.cache_lookup.fail_first = 2;
  EngineOptions options;
  options.fault_injector = std::make_shared<FaultInjector>(plan);
  options.max_attempts = 3;
  options.retry_backoff_seconds = 0.0005;
  SelectionEngine engine(corpus, options);

  auto response = engine.Select(RequestFor(*corpus, 0));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value().trace.attempts, 3);
  EXPECT_GT(response.value().trace.backoff_seconds, 0.0);
  EXPECT_EQ(options.fault_injector->injected_errors(), 2u);

  std::string dump = engine.DumpMetrics();
  EXPECT_NE(dump.find("counter engine.retries 2"), std::string::npos) << dump;
}

TEST(SelectionEngineTest, TransientFaultsSurfaceAfterMaxAttempts) {
  auto corpus = MakeCorpus(60);
  FaultPlan plan;
  plan.cache_lookup.fail_first = 10;  // More than the engine will retry.
  EngineOptions options;
  options.fault_injector = std::make_shared<FaultInjector>(plan);
  options.max_attempts = 2;
  options.retry_backoff_seconds = 0.0005;
  SelectionEngine engine(corpus, options);

  auto response = engine.Select(RequestFor(*corpus, 0));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInternal);
  EXPECT_NE(response.status().message().find("injected fault"),
            std::string::npos);
  EXPECT_EQ(options.fault_injector->injected_errors(), 2u);  // One per try.

  // The failure is traced with its attempt count.
  std::vector<RequestTrace> traces = engine.Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].status, "internal");
  EXPECT_EQ(traces[0].attempts, 2);
}

TEST(SelectionEngineTest, OverloadReturnsResourceExhausted) {
  auto corpus = MakeCorpus(80);
  // Pin each solve at >= 50ms so concurrent requests pile up on the
  // single admission slot deterministically.
  FaultPlan plan;
  plan.solve.delay_rate = 1.0;
  plan.solve.delay_seconds = 0.05;
  EngineOptions options;
  options.threads = 4;
  options.max_in_flight = 1;
  options.max_queue = 0;  // No waiting room: overflow is refused.
  options.fault_injector = std::make_shared<FaultInjector>(plan);
  SelectionEngine engine(corpus, options);

  size_t n = std::min<size_t>(corpus->num_instances(), 4);
  ASSERT_GE(n, 2u);
  std::vector<SelectRequest> requests;
  for (size_t i = 0; i < n; ++i) {
    requests.push_back(RequestFor(*corpus, i));
  }
  std::vector<Result<SelectResponse>> responses = engine.SelectBatch(requests);

  size_t succeeded = 0, rejected = 0;
  for (const auto& response : responses) {
    if (response.ok()) {
      ++succeeded;
    } else {
      ASSERT_EQ(response.status().code(), StatusCode::kResourceExhausted)
          << response.status();
      ++rejected;
    }
  }
  EXPECT_GE(succeeded, 1u);
  EXPECT_GE(rejected, 1u);
  std::string dump = engine.DumpMetrics();
  EXPECT_NE(dump.find("counter engine.rejected"), std::string::npos) << dump;
  EXPECT_NE(dump.find("histogram engine.queue_seconds"), std::string::npos);
}

TEST(SelectionEngineTest, OverloadDegradesToAnytimeWhenFloorAllows) {
  auto corpus = MakeCorpus(60);
  // One admission slot, no queue — and the test occupies the slot
  // out-of-band via the shared pipeline, so EVERY engine request is an
  // overload, deterministically (no timing, no thread races).
  PipelineOptions pipeline_options;
  pipeline_options.max_in_flight = 1;
  pipeline_options.max_queue = 0;
  auto pipeline = std::make_shared<RequestPipeline>(pipeline_options);
  EngineOptions options;
  options.pipeline = pipeline;
  SelectionEngine engine(corpus, options);

  Deadline unlimited(0.0);
  ASSERT_TRUE(pipeline->Admit(unlimited, nullptr).ok());

  // The pre-tier contract: an exact-floor request is refused.
  SelectRequest request = RequestFor(*corpus, 0);
  auto refused = engine.Select(request);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  // The same overload with the anytime floor answers with the greedy
  // incumbent instead of the rejection.
  request.options.min_tier = QualityTier::kAnytime;
  auto degraded = engine.Select(request);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded.value().tier, QualityTier::kAnytime);
  EXPECT_EQ(degraded.value().objective_gap, 0.0);
  EXPECT_EQ(degraded.value().trace.tier, "anytime");
  EXPECT_EQ(degraded.value().trace.status, "ok");
  std::string dump = engine.DumpMetrics();
  EXPECT_NE(dump.find("counter engine.degraded"), std::string::npos) << dump;
  EXPECT_NE(dump.find("counter engine.tier_anytime"), std::string::npos);

  // Degraded answers are never memoized: once the slot frees, the same
  // request solves exactly — the overload answer must not shadow it.
  pipeline->Release();
  auto exact = engine.Select(request);
  ASSERT_TRUE(exact.ok()) << exact.status();
  EXPECT_FALSE(exact.value().result_cache_hit);
  EXPECT_EQ(exact.value().tier, QualityTier::kExact);

  // The degraded selections were the greedy selector's, verbatim.
  SelectRequest greedy_request = RequestFor(*corpus, 0, "CompaReSetSGreedy");
  auto greedy = engine.Select(greedy_request);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  EXPECT_EQ(degraded.value().selections, greedy.value().selections);
}

TEST(SelectionEngineTest, EngineWideFloorDegradesExactRequests) {
  auto corpus = MakeCorpus(60);
  PipelineOptions pipeline_options;
  pipeline_options.max_in_flight = 1;
  pipeline_options.max_queue = 0;
  auto pipeline = std::make_shared<RequestPipeline>(pipeline_options);
  EngineOptions options;
  options.pipeline = pipeline;
  // Operator-set policy: this engine degrades under load even for
  // callers that did not opt in (LooserTier of the two floors rules).
  options.min_quality_tier = QualityTier::kAnytime;
  SelectionEngine engine(corpus, options);

  Deadline unlimited(0.0);
  ASSERT_TRUE(pipeline->Admit(unlimited, nullptr).ok());
  auto degraded = engine.Select(RequestFor(*corpus, 0));
  pipeline->Release();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded.value().tier, QualityTier::kAnytime);
}

TEST(SelectionEngineTest, QueuedRequestsAdmitAsSlotsFree) {
  auto corpus = MakeCorpus(80);
  EngineOptions options;
  options.threads = 3;
  options.max_in_flight = 1;
  options.max_queue = 8;  // Room for everyone: nobody is refused.
  SelectionEngine engine(corpus, options);

  size_t n = std::min<size_t>(corpus->num_instances(), 3);
  std::vector<SelectRequest> requests;
  for (size_t i = 0; i < n; ++i) {
    requests.push_back(RequestFor(*corpus, i));
  }
  std::vector<Result<SelectResponse>> responses = engine.SelectBatch(requests);
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status();
  }
}

TEST(SelectionEngineTest, FaultInjectedSwapKeepsServingOldSnapshot) {
  auto old_corpus = MakeCorpus(60, /*seed=*/42);
  FaultPlan plan;
  plan.corpus_swap.fail_first = 1;
  EngineOptions options;
  options.fault_injector = std::make_shared<FaultInjector>(plan);
  SelectionEngine engine(old_corpus, options);
  ASSERT_TRUE(engine.Select(RequestFor(*old_corpus, 0)).ok());

  auto new_corpus = MakeCorpus(60, /*seed=*/7);
  Status swap = engine.SwapCorpus(new_corpus);
  ASSERT_FALSE(swap.ok());
  EXPECT_EQ(swap.code(), StatusCode::kInternal);
  // Refused swap: old snapshot still serving, caches untouched.
  EXPECT_EQ(engine.corpus(), old_corpus);
  EXPECT_EQ(engine.CacheStats().entries, 1u);

  ASSERT_TRUE(engine.SwapCorpus(new_corpus).ok());  // fail_first spent.
  EXPECT_EQ(engine.corpus(), new_corpus);
}

TEST(SelectionEngineTest, TracesRecordTheRequestLifecycle) {
  auto corpus = MakeCorpus(60);
  SelectionEngine engine(corpus);
  SelectRequest request = RequestFor(*corpus, 0);
  ASSERT_TRUE(engine.Select(request).ok());
  ASSERT_TRUE(engine.Select(request).ok());  // Memo hit.
  SelectRequest bad;
  bad.target_id = "no-such-product";
  ASSERT_FALSE(engine.Select(bad).ok());

  std::vector<RequestTrace> traces = engine.Traces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].request_id, 1u);
  EXPECT_EQ(traces[0].shard_id, 0u);       // Unsharded engine.
  EXPECT_EQ(traces[0].corpus_epoch, 0u);   // No swap has happened.
  EXPECT_EQ(traces[0].status, "ok");
  EXPECT_FALSE(traces[0].result_cache_hit);
  EXPECT_GT(traces[0].solver_iterations, 0u);
  EXPECT_GT(traces[0].total_seconds, 0.0);
  EXPECT_EQ(traces[1].request_id, 2u);
  EXPECT_TRUE(traces[1].result_cache_hit);
  EXPECT_EQ(traces[2].status, "not found");

  std::string jsonl = engine.DumpTraces();
  EXPECT_NE(jsonl.find("\"request_id\":1"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"shard_id\":0"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"corpus_epoch\":0"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"status\":\"not found\""), std::string::npos);
  // One line per request.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
}

// corpus_epoch in traces tracks SwapCorpus, so a trace stream can be
// correlated with catalog swaps; shard_id comes from EngineOptions.
TEST(SelectionEngineTest, TracesCarryEpochAcrossSwapsAndConfiguredShardId) {
  auto corpus = MakeCorpus(60);
  EngineOptions options;
  options.shard_id = 3;
  SelectionEngine engine(corpus, options);
  SelectRequest request = RequestFor(*corpus, 0);

  EXPECT_EQ(engine.corpus_epoch(), 0u);
  ASSERT_TRUE(engine.Select(request).ok());
  ASSERT_TRUE(engine.SwapCorpus(MakeCorpus(60, /*seed=*/7)).ok());
  EXPECT_EQ(engine.corpus_epoch(), 1u);
  ASSERT_TRUE(engine.Select(request).ok());

  std::vector<RequestTrace> traces = engine.Traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].corpus_epoch, 0u);
  EXPECT_EQ(traces[1].corpus_epoch, 1u);
  EXPECT_EQ(traces[0].shard_id, 3u);
  EXPECT_EQ(traces[1].shard_id, 3u);
  std::string jsonl = engine.DumpTraces();
  EXPECT_NE(jsonl.find("\"corpus_epoch\":1"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"shard_id\":3"), std::string::npos) << jsonl;
}

TEST(SelectionEngineTest, TraceRingEvictsOldestAtCapacity) {
  auto corpus = MakeCorpus(60);
  EngineOptions options;
  options.trace_capacity = 2;
  SelectionEngine engine(corpus, options);
  SelectRequest request = RequestFor(*corpus, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Select(request).ok());
  }
  std::vector<RequestTrace> traces = engine.Traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].request_id, 3u);
  EXPECT_EQ(traces[1].request_id, 4u);
}

}  // namespace
}  // namespace comparesets
