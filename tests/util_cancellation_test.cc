#include "util/cancellation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace comparesets {
namespace {

TEST(CancelTokenTest, StartsLiveAndLatchesCancelled) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // Idempotent.
  EXPECT_TRUE(token.cancelled());
}

TEST(ExecControlTest, NullControlAlwaysPasses) {
  EXPECT_TRUE(CheckExec(nullptr, "anywhere").ok());

  // A default control (no deadline, no token) also never trips.
  ExecControl control;
  EXPECT_TRUE(control.Check("loop").ok());
}

TEST(ExecControlTest, CountsEveryCheck) {
  std::atomic<uint64_t> iterations{0};
  ExecControl control;
  control.iterations = &iterations;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(control.Check("loop").ok());
  }
  EXPECT_EQ(iterations.load(), 5u);
}

TEST(ExecControlTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  Deadline deadline(1e-9);
  while (!deadline.Expired()) {
    std::this_thread::yield();
  }
  ExecControl control;
  control.deadline = &deadline;
  Status status = control.Check("nomp");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("nomp"), std::string::npos);
}

TEST(ExecControlTest, UnlimitedDeadlineNeverTrips) {
  Deadline deadline(0.0);  // Non-positive budget = no limit.
  ExecControl control;
  control.deadline = &deadline;
  EXPECT_TRUE(control.Check("loop").ok());
}

TEST(ExecControlTest, CancellationOutranksDeadline) {
  Deadline deadline(1e-9);
  while (!deadline.Expired()) {
    std::this_thread::yield();
  }
  CancelToken token;
  token.Cancel();
  ExecControl control;
  control.deadline = &deadline;
  control.cancel = &token;
  // Both tripped: cancellation wins, since it is the caller's explicit
  // request rather than a latency side effect.
  EXPECT_EQ(control.Check("loop").code(), StatusCode::kCancelled);
}

TEST(ExecControlTest, CancelFlippedFromAnotherThreadIsObserved) {
  CancelToken token;
  ExecControl control;
  control.cancel = &token;
  ASSERT_TRUE(control.Check("loop").ok());
  std::thread canceller([&] { token.Cancel(); });
  canceller.join();
  EXPECT_EQ(control.Check("loop").code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace comparesets
