// The SLO shedding loop and the priority-split admission pipeline:
//   * RequestPipeline keeps separate waiting budgets per priority class,
//     refuses batch work first, and never lets a queued batch request
//     get ahead of a queued interactive one.
//   * SelectionEngine stamps the effective priority into traces, counts
//     batch refusals (`pipeline.batch_shed`), and — when the floor
//     admits it — degrades refused work instead of rejecting, counting
//     SLO-driven degrades (`engine.slo_degrades`) separately.
//   * SloController flips the degrade-floor and batch-budget levers on
//     p99-vs-SLO crossings with hysteresis, and is inert below
//     min_samples or with the SLO unset.
// Tests drive TickOnce directly (no polling thread) for determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "service/engine.h"
#include "service/request_pipeline.h"
#include "service/slo_controller.h"

namespace comparesets {
namespace {

std::shared_ptr<const IndexedCorpus> MakeCorpus(size_t products = 24) {
  auto config = DefaultConfig("Cellphone", products);
  config.status().CheckOK();
  config.value().seed = 7;
  auto corpus = GenerateCorpus(config.value());
  corpus.status().CheckOK();
  return IndexedCorpus::Build(std::move(corpus).value()).ValueOrDie();
}

uint64_t CounterValue(const SelectionEngine& engine, const std::string& name) {
  MetricsSnapshot snapshot = engine.SnapshotMetrics();
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

TEST(PipelinePriorityTest, BatchRefusedAtZeroBudgetInteractiveStillQueues) {
  PipelineOptions options;
  options.max_in_flight = 1;
  options.max_queue = 4;
  RequestPipeline pipeline(options);
  Deadline no_deadline(0.0);

  // Occupy the only slot.
  ASSERT_TRUE(pipeline.Admit(no_deadline, nullptr).ok());

  // The SLO lever: no batch waiting budget at all — a batch request
  // that cannot take a slot immediately is refused, not queued.
  pipeline.SetBatchQueueLimit(0);
  Status batch = pipeline.Admit(no_deadline, nullptr,
                                RequestPriority::kBatch);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(batch.message().find("batch"), std::string::npos) << batch;

  // Interactive keeps its own (non-zero) budget: it queues and is
  // admitted once the slot frees.
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    Status status = pipeline.Admit(no_deadline, nullptr);
    EXPECT_TRUE(status.ok()) << status;
    admitted.store(true);
    pipeline.Release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  pipeline.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(PipelinePriorityTest, QueuedBatchNeverOvertakesQueuedInteractive) {
  PipelineOptions options;
  options.max_in_flight = 1;
  options.max_queue = 4;
  options.max_batch_queue = 4;
  RequestPipeline pipeline(options);
  Deadline no_deadline(0.0);
  ASSERT_TRUE(pipeline.Admit(no_deadline, nullptr).ok());

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> order;  // 0 = batch, 1 = interactive
  std::atomic<int> waiting{0};

  std::thread batch_waiter([&] {
    waiting.fetch_add(1);
    Status status =
        pipeline.Admit(no_deadline, nullptr, RequestPriority::kBatch);
    ASSERT_TRUE(status.ok()) << status;
    {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(0);
      cv.notify_all();
    }
    pipeline.Release();
  });
  // Let the batch request reach its queue first, then add interactive.
  while (waiting.load() < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread interactive_waiter([&] {
    Status status = pipeline.Admit(no_deadline, nullptr);
    ASSERT_TRUE(status.ok()) << status;
    {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(1);
      cv.notify_all();
    }
    pipeline.Release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  pipeline.Release();  // Frees the slot with BOTH classes queued.
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return order.size() == 2u; }));
  }
  batch_waiter.join();
  interactive_waiter.join();
  // Despite queueing first, batch runs second: a freed slot goes to the
  // queued interactive request.
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
}

TEST(EnginePriorityTest, TraceCarriesEffectivePriority) {
  EngineOptions options;
  options.threads = 1;
  SelectionEngine engine(MakeCorpus(), options);
  const std::string target = engine.corpus()->instances()[0].target().id;

  SelectRequest interactive;
  interactive.target_id = target;
  ASSERT_TRUE(engine.Select(interactive).ok());

  SelectRequest batch;
  batch.target_id = target;
  batch.priority = RequestPriority::kBatch;
  ASSERT_TRUE(engine.Select(batch).ok());

  std::vector<RequestTrace> traces = engine.Traces();
  ASSERT_GE(traces.size(), 2u);
  EXPECT_EQ(traces[traces.size() - 2].priority, "interactive");
  EXPECT_EQ(traces[traces.size() - 1].priority, "batch");
}

TEST(EnginePriorityTest, SelectBatchDemotesSubRequests) {
  EngineOptions options;
  options.threads = 1;  // Inline path — order is deterministic.
  SelectionEngine engine(MakeCorpus(), options);
  const auto& instances = engine.corpus()->instances();

  std::vector<SelectRequest> requests(2);
  requests[0].target_id = instances[0].target().id;
  requests[1].target_id = instances[1].target().id;
  // Both arrive interactive; the engine's batch_priority (default
  // kBatch) demotes them for scheduling.
  for (const auto& response : engine.SelectBatch(requests)) {
    ASSERT_TRUE(response.ok()) << response.status();
  }
  std::vector<RequestTrace> traces = engine.Traces();
  ASSERT_GE(traces.size(), 2u);
  EXPECT_EQ(traces[traces.size() - 1].priority, "batch");
  EXPECT_EQ(traces[traces.size() - 2].priority, "batch");

  // An engine configured not to demote keeps the requests interactive —
  // the pre-priority FIFO behaviour.
  EngineOptions fifo_options = options;
  fifo_options.batch_priority = RequestPriority::kInteractive;
  SelectionEngine fifo(MakeCorpus(), fifo_options);
  for (const auto& response : fifo.SelectBatch(requests)) {
    ASSERT_TRUE(response.ok()) << response.status();
  }
  traces = fifo.Traces();
  ASSERT_GE(traces.size(), 2u);
  EXPECT_EQ(traces[traces.size() - 1].priority, "interactive");
}

TEST(EnginePriorityTest, RefusedBatchCountsShedAndDegradesUnderSloFloor) {
  EngineOptions options;
  options.threads = 1;
  options.max_in_flight = 1;
  SelectionEngine engine(MakeCorpus(), options);
  const std::string target = engine.corpus()->instances()[0].target().id;

  // Occupy the only slot from outside, then starve the batch budget —
  // exactly what the SloController's shed does.
  RequestPipeline* pipeline = engine.pipeline();
  ASSERT_NE(pipeline, nullptr);
  Deadline no_deadline(0.0);
  ASSERT_TRUE(pipeline->Admit(no_deadline, nullptr).ok());
  pipeline->SetBatchQueueLimit(0);

  SelectRequest request;
  request.target_id = target;
  request.priority = RequestPriority::kBatch;

  // Configured floor is exact: the refusal surfaces.
  auto refused = engine.Select(request);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(CounterValue(engine, "pipeline.batch_shed"), 1u);

  // SLO-driven floor at anytime: the same refusal now degrades to the
  // greedy incumbent and is counted as an SLO degrade.
  engine.SetQualityFloor(QualityTier::kAnytime, /*slo_driven=*/true);
  auto degraded = engine.Select(request);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded.value().tier, QualityTier::kAnytime);
  EXPECT_EQ(CounterValue(engine, "pipeline.batch_shed"), 2u);
  EXPECT_EQ(CounterValue(engine, "engine.slo_degrades"), 1u);

  pipeline->Release();
  engine.SetQualityFloor(options.min_quality_tier, /*slo_driven=*/false);

  // With the slot free again, batch is admitted normally.
  auto admitted = engine.Select(request);
  ASSERT_TRUE(admitted.ok()) << admitted.status();
  EXPECT_EQ(admitted.value().tier, QualityTier::kExact);
}

TEST(SloControllerTest, ShedsWhenP99CrossesSloAndMovesBothLevers) {
  EngineOptions options;
  options.threads = 1;
  options.max_in_flight = 1;
  auto engine =
      std::make_unique<SelectionEngine>(MakeCorpus(), options);
  const auto& instances = engine->corpus()->instances();

  // Real traffic: any real solve takes far longer than a 1ns SLO.
  for (size_t i = 0; i < 8; ++i) {
    SelectRequest request;
    request.target_id = instances[i % instances.size()].target().id;
    ASSERT_TRUE(engine->Select(request).ok());
  }

  SloControllerOptions slo_options;
  slo_options.slo_seconds = 1e-9;
  slo_options.min_samples = 8;
  SloController controller(slo_options, engine->pipeline(), {engine.get()});

  SloSample sample = controller.TickOnce();
  EXPECT_GE(sample.samples, 8u);
  EXPECT_GT(sample.p99_seconds, slo_options.slo_seconds);
  EXPECT_TRUE(sample.shedding);
  EXPECT_TRUE(controller.shedding());
  EXPECT_EQ(controller.sheds(), 1u);
  EXPECT_EQ(engine->quality_floor(), QualityTier::kAnytime);
  EXPECT_EQ(engine->pipeline()->batch_queue_limit(), 0u);

  // Already shedding: another over-SLO tick does not re-shed.
  controller.TickOnce();
  EXPECT_EQ(controller.sheds(), 1u);
}

TEST(SloControllerTest, RestoresWithHysteresisOnceP99Recovers) {
  EngineOptions options;
  options.threads = 1;
  options.max_in_flight = 1;
  auto engine =
      std::make_unique<SelectionEngine>(MakeCorpus(), options);
  const auto& instances = engine->corpus()->instances();
  for (size_t i = 0; i < 8; ++i) {
    SelectRequest request;
    request.target_id = instances[i % instances.size()].target().id;
    ASSERT_TRUE(engine->Select(request).ok());
  }

  // Generous SLO: real p99 sits far below recover_ratio × slo, so a
  // manually shed controller restores on its first tick.
  SloControllerOptions slo_options;
  slo_options.slo_seconds = 1000.0;
  slo_options.min_samples = 8;
  SloController controller(slo_options, engine->pipeline(), {engine.get()});

  controller.Shed();
  EXPECT_TRUE(controller.shedding());
  EXPECT_EQ(engine->quality_floor(), QualityTier::kAnytime);
  EXPECT_EQ(engine->pipeline()->batch_queue_limit(), 0u);

  SloSample sample = controller.TickOnce();
  EXPECT_FALSE(sample.shedding);
  EXPECT_FALSE(controller.shedding());
  EXPECT_EQ(controller.restores(), 1u);
  EXPECT_EQ(engine->quality_floor(), options.min_quality_tier);
  EXPECT_EQ(engine->pipeline()->batch_queue_limit(),
            engine->pipeline()->configured_batch_queue());
}

TEST(SloControllerTest, InertWithoutSloOrBelowMinSamples) {
  EngineOptions options;
  options.threads = 1;
  options.max_in_flight = 1;
  auto engine =
      std::make_unique<SelectionEngine>(MakeCorpus(), options);
  SelectRequest request;
  request.target_id = engine->corpus()->instances()[0].target().id;
  ASSERT_TRUE(engine->Select(request).ok());

  // SLO unset: reports rates, never moves a lever.
  SloControllerOptions off;
  off.slo_seconds = 0.0;
  off.min_samples = 1;
  SloController disabled(off, engine->pipeline(), {engine.get()});
  SloSample sample = disabled.TickOnce();
  EXPECT_GE(sample.samples, 1u);
  EXPECT_FALSE(sample.shedding);
  EXPECT_EQ(engine->quality_floor(), options.min_quality_tier);

  // Below min_samples: the 1ns SLO would certainly shed, but the cold-
  // start guard holds.
  SloControllerOptions cold;
  cold.slo_seconds = 1e-9;
  cold.min_samples = 1000;
  SloController guarded(cold, engine->pipeline(), {engine.get()});
  sample = guarded.TickOnce();
  EXPECT_FALSE(sample.shedding);
  EXPECT_EQ(guarded.sheds(), 0u);
  EXPECT_EQ(engine->quality_floor(), options.min_quality_tier);
}

TEST(SloControllerTest, BackgroundPollerStartsTicksAndStops) {
  EngineOptions options;
  options.threads = 1;
  options.max_in_flight = 1;
  auto engine =
      std::make_unique<SelectionEngine>(MakeCorpus(), options);
  const auto& instances = engine->corpus()->instances();
  for (size_t i = 0; i < 8; ++i) {
    SelectRequest request;
    request.target_id = instances[i % instances.size()].target().id;
    ASSERT_TRUE(engine->Select(request).ok());
  }

  SloControllerOptions slo_options;
  slo_options.slo_seconds = 1e-9;
  slo_options.min_samples = 8;
  slo_options.interval_ms = 5;
  SloController controller(slo_options, engine->pipeline(), {engine.get()});
  controller.Start();
  controller.Start();  // Idempotent.
  for (int i = 0; i < 1000 && controller.sheds() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  controller.Stop();
  controller.Stop();  // Idempotent.
  EXPECT_EQ(controller.sheds(), 1u);
  EXPECT_TRUE(controller.shedding());
}

}  // namespace
}  // namespace comparesets
