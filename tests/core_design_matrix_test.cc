#include "core/design_matrix.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace comparesets {
namespace {

class DesignMatrixTest : public ::testing::Test {
 protected:
  DesignMatrixTest()
      : corpus_(testing::WorkingExampleCorpus()),
        instance_(testing::WorkingExampleInstance(corpus_)),
        vectors_(BuildInstanceVectors(OpinionModel::Binary(5), instance_)) {}

  Corpus corpus_;
  ProblemInstance instance_;
  InstanceVectors vectors_;
};

TEST_F(DesignMatrixTest, CrsSystemShape) {
  DesignSystem system = BuildCrsSystem(vectors_, 0);
  EXPECT_EQ(system.v.rows(), 10u);  // 2z opinion rows only.
  EXPECT_EQ(system.target.size(), 10u);
  EXPECT_TRUE(system.target.AlmostEquals(vectors_.tau[0]));
}

TEST_F(DesignMatrixTest, CompareSetsSystemShapeAndTarget) {
  double lambda = 2.0;
  DesignSystem system = BuildCompareSetsSystem(vectors_, 0, lambda);
  EXPECT_EQ(system.v.rows(), 15u);  // 2z + z.
  Vector expected = vectors_.tau[0];
  expected.AppendScaled(lambda, vectors_.gamma);
  EXPECT_TRUE(system.target.AlmostEquals(expected));
}

TEST_F(DesignMatrixTest, DeduplicationMergesIdenticalReviews) {
  // The working-example target has two identical triples: r1≡r4, r2≡r5,
  // r3≡r6 → exactly 3 deduplicated column groups of multiplicity 2.
  DesignSystem system = BuildCompareSetsSystem(vectors_, 0, 1.0);
  EXPECT_EQ(system.v.cols(), 3u);
  for (int count : system.dup_counts) EXPECT_EQ(count, 2);
  size_t total_reviews = 0;
  for (const auto& group : system.group_reviews) {
    total_reviews += group.size();
  }
  EXPECT_EQ(total_reviews, 6u);
}

TEST_F(DesignMatrixTest, GroupReviewsIndexRealReviews) {
  DesignSystem system = BuildCompareSetsSystem(vectors_, 0, 1.0);
  const Product& target = *instance_.items[0];
  for (size_t g = 0; g < system.group_reviews.size(); ++g) {
    Vector representative = system.v.Column(g);
    for (size_t review_index : system.group_reviews[g]) {
      ASSERT_LT(review_index, target.reviews.size());
      // Every member of the group must produce the same column.
      Vector column =
          vectors_.opinion_columns[0][review_index];
      column.AppendScaled(1.0, vectors_.aspect_columns[0][review_index]);
      EXPECT_TRUE(column.AlmostEquals(representative)) << "group " << g;
    }
  }
}

TEST_F(DesignMatrixTest, LambdaScalesAspectRowsOnly) {
  DesignSystem unscaled = BuildCompareSetsSystem(vectors_, 0, 1.0);
  DesignSystem scaled = BuildCompareSetsSystem(vectors_, 0, 3.0);
  ASSERT_EQ(unscaled.v.cols(), scaled.v.cols());
  for (size_t c = 0; c < unscaled.v.cols(); ++c) {
    for (size_t r = 0; r < 10; ++r) {  // Opinion rows unchanged.
      EXPECT_DOUBLE_EQ(unscaled.v(r, c), scaled.v(r, c));
    }
    for (size_t r = 10; r < 15; ++r) {  // Aspect rows scaled by 3.
      EXPECT_DOUBLE_EQ(3.0 * unscaled.v(r, c), scaled.v(r, c));
    }
  }
}

TEST_F(DesignMatrixTest, PlusSystemShapeWithOtherItems) {
  std::vector<Vector> other_phis = {vectors_.AspectOf(1, {0, 1}),
                                    vectors_.AspectOf(2, {0})};
  double lambda = 1.0;
  double mu = 0.5;
  DesignSystem system =
      BuildCompareSetsPlusSystem(vectors_, 0, lambda, mu, other_phis);
  // Rows: 2z (opinions) + z (Γ block) + 2·z (two other-item blocks).
  EXPECT_EQ(system.v.rows(), 10u + 5u + 10u);
  EXPECT_EQ(system.target.size(), system.v.rows());

  // Target tail blocks must be the μ-scaled other φ's, in order.
  for (size_t a = 0; a < 5; ++a) {
    EXPECT_DOUBLE_EQ(system.target[15 + a], mu * other_phis[0][a]);
    EXPECT_DOUBLE_EQ(system.target[20 + a], mu * other_phis[1][a]);
  }
}

TEST_F(DesignMatrixTest, PlusSystemRepeatsAspectBlockScaledByMu) {
  std::vector<Vector> other_phis = {vectors_.AspectOf(1, {0}),
                                    vectors_.AspectOf(2, {0})};
  double mu = 0.25;
  DesignSystem system =
      BuildCompareSetsPlusSystem(vectors_, 0, 1.0, mu, other_phis);
  for (size_t c = 0; c < system.v.cols(); ++c) {
    for (size_t a = 0; a < 5; ++a) {
      double lambda_block = system.v(10 + a, c);   // λ = 1 block.
      double mu_block_1 = system.v(15 + a, c);
      double mu_block_2 = system.v(20 + a, c);
      EXPECT_DOUBLE_EQ(mu_block_1, mu * lambda_block);
      EXPECT_DOUBLE_EQ(mu_block_2, mu * lambda_block);
    }
  }
}

TEST_F(DesignMatrixTest, PlusSystemRejectsWrongPhiCount) {
  std::vector<Vector> wrong = {vectors_.AspectOf(1, {0})};  // Need 2.
  EXPECT_DEATH(
      BuildCompareSetsPlusSystem(vectors_, 0, 1.0, 1.0, wrong),
      "one");
}

TEST_F(DesignMatrixTest, ZeroLambdaCollapsesToOpinionMatching) {
  DesignSystem system = BuildCompareSetsSystem(vectors_, 0, 0.0);
  for (size_t c = 0; c < system.v.cols(); ++c) {
    for (size_t r = 10; r < 15; ++r) {
      EXPECT_DOUBLE_EQ(system.v(r, c), 0.0);
    }
  }
  for (size_t r = 10; r < 15; ++r) {
    EXPECT_DOUBLE_EQ(system.target[r], 0.0);
  }
}

}  // namespace
}  // namespace comparesets
