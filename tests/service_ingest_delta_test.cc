// The streaming-ingestion regression oracle: a corpus grown through
// WAL-record delta batches must be BIT-IDENTICAL to a full rebuild
// from scratch — same products, same reviews, same catalog, same
// instance enumeration, same shard slices, and the same response
// payloads for every target (including instances that only exist
// because streamed reviews flipped a product eligible). The rebuild
// comparator applies the same records to its own copy of the base
// corpus, rebuilds the full IndexedCorpus, and swaps it into a router
// created on the SAME initial corpus (same partition bounds), so the
// two paths differ only in HOW snapshots are constructed.
//
// The suite also pins the serving-side contract: a delta batch bumps
// only the touched shards' epochs, so untouched shards keep their
// result memos and vector caches warm across an apply — the same
// isolation guarantee PR'd for per-shard swaps.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "service/ingest/delta.h"
#include "service/ingest/driver.h"
#include "service/ingest/wal.h"
#include "service/router.h"

namespace comparesets {
namespace {

Corpus MakeSynthetic(size_t products, uint64_t seed = 42) {
  auto config = DefaultConfig("Cellphone", products);
  config.status().CheckOK();
  config.value().seed = seed;
  auto corpus = GenerateCorpus(config.value());
  corpus.status().CheckOK();
  return std::move(corpus).value();
}

/// A streamed review for `product_id`, deterministic in `i`. Mixes
/// catalog-known aspect names with a NEW one so catalog growth is part
/// of what the oracle compares.
WalRecord StreamRecord(const std::string& product_id, size_t i,
                       const AspectCatalog& catalog) {
  WalRecord record;
  record.product_id = product_id;
  record.review_id = "stream-r" + std::to_string(i);
  record.reviewer_id = "stream-u" + std::to_string(i % 4);
  record.text = "streamed review number " + std::to_string(i) +
                " praising durability";
  record.rating = 1.0 + static_cast<double>(i % 5);
  record.opinions.push_back(
      {catalog.Name(static_cast<AspectId>(i % catalog.size())),
       i % 2 == 0 ? Polarity::kPositive : Polarity::kNegative, 1.0});
  record.opinions.push_back({"stream-durability", Polarity::kPositive, 0.5});
  return record;
}

void ExpectSameCorpus(const Corpus& got, const Corpus& want,
                      const std::string& where) {
  ASSERT_EQ(got.num_products(), want.num_products()) << where;
  ASSERT_EQ(got.num_aspects(), want.num_aspects()) << where;
  for (size_t a = 0; a < want.num_aspects(); ++a) {
    EXPECT_EQ(got.catalog().Name(static_cast<AspectId>(a)),
              want.catalog().Name(static_cast<AspectId>(a)))
        << where << " aspect " << a;
  }
  for (size_t p = 0; p < want.num_products(); ++p) {
    const Product& g = got.products()[p];
    const Product& w = want.products()[p];
    ASSERT_EQ(g.id, w.id) << where << " product " << p;
    EXPECT_EQ(g.title, w.title) << where;
    EXPECT_EQ(g.also_bought, w.also_bought) << where;
    ASSERT_EQ(g.reviews.size(), w.reviews.size())
        << where << " product " << g.id;
    for (size_t r = 0; r < w.reviews.size(); ++r) {
      EXPECT_EQ(g.reviews[r].id, w.reviews[r].id) << where;
      EXPECT_EQ(g.reviews[r].reviewer_id, w.reviews[r].reviewer_id) << where;
      EXPECT_EQ(g.reviews[r].text, w.reviews[r].text) << where;
      EXPECT_EQ(g.reviews[r].rating, w.reviews[r].rating) << where;
      EXPECT_EQ(g.reviews[r].opinions, w.reviews[r].opinions)
          << where << " product " << g.id << " review " << r;
    }
  }
}

void ExpectSameSnapshot(const IndexedCorpus& got, const IndexedCorpus& want,
                        const std::string& where) {
  EXPECT_EQ(got.shard().shard_id, want.shard().shard_id) << where;
  EXPECT_EQ(got.shard().num_shards, want.shard().num_shards) << where;
  EXPECT_EQ(got.shard().range.begin, want.shard().range.begin) << where;
  EXPECT_EQ(got.shard().range.end, want.shard().range.end) << where;
  ASSERT_EQ(got.num_instances(), want.num_instances()) << where;
  for (size_t i = 0; i < want.num_instances(); ++i) {
    const ProblemInstance& g = got.instances()[i];
    const ProblemInstance& w = want.instances()[i];
    ASSERT_EQ(g.num_items(), w.num_items()) << where << " instance " << i;
    for (size_t j = 0; j < w.num_items(); ++j) {
      EXPECT_EQ(g.items[j]->id, w.items[j]->id)
          << where << " instance " << i << " item " << j;
    }
  }
  ExpectSameCorpus(got.corpus(), want.corpus(), where);
}

/// Bit-for-bit payload equality (the determinism-oracle comparator,
/// minus alignment — these engines run with measure_alignment off).
void ExpectSameResponse(const Result<SelectResponse>& got,
                        const Result<SelectResponse>& want,
                        const std::string& where) {
  ASSERT_EQ(got.ok(), want.ok())
      << where << ": " << got.status() << " vs " << want.status();
  if (!want.ok()) return;
  EXPECT_EQ(got.value().target_id, want.value().target_id) << where;
  EXPECT_EQ(got.value().item_ids, want.value().item_ids) << where;
  EXPECT_EQ(got.value().selections, want.value().selections) << where;
  EXPECT_EQ(got.value().objective, want.value().objective) << where;
}

RouterOptions SerialRouterOptions() {
  RouterOptions options;
  options.engine.threads = 1;
  options.engine.measure_alignment = false;
  return options;
}

/// The deterministic record stream both oracle sides consume: reviews
/// landing on a spread of existing products, plus records naming
/// unknown products (which both sides must drop).
std::vector<WalRecord> OracleStream(const Corpus& base, size_t count) {
  std::vector<WalRecord> stream;
  for (size_t i = 0; i < count; ++i) {
    if (i % 9 == 8) {
      WalRecord unknown = StreamRecord("no-such-product", i, base.catalog());
      stream.push_back(unknown);
      continue;
    }
    const Product& product =
        base.products()[(i * 7) % base.num_products()];
    stream.push_back(StreamRecord(product.id, i, base.catalog()));
  }
  return stream;
}

class DeltaOracleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DeltaOracleTest, DeltaAppliesMatchFullRebuildBitForBit) {
  const size_t num_shards = GetParam();
  Corpus base = MakeSynthetic(120);
  base.Finalize();

  // Delta side: a router on the initial corpus, grown batch by batch.
  auto initial = IndexedCorpus::Build(base);
  initial.status().CheckOK();
  auto delta_router =
      ShardRouter::Create(initial.value(), num_shards, SerialRouterOptions());
  delta_router.status().CheckOK();
  auto builder =
      DeltaCorpusBuilder::Create(base, delta_router.value()->bounds(), {});
  builder.status().CheckOK();

  // Rebuild side: its own copy of the base, the same records applied in
  // one sweep, a full from-scratch index, swapped into a router created
  // on the SAME initial corpus (identical partition bounds).
  Corpus rebuilt = base;
  std::vector<WalRecord> stream = OracleStream(base, 60);
  size_t dropped = 0;
  for (const WalRecord& record : stream) {
    Status applied = ApplyWalRecordToCorpus(record, &rebuilt);
    if (!applied.ok()) {
      ASSERT_EQ(applied.code(), StatusCode::kNotFound);
      ++dropped;
    }
  }
  ASSERT_GT(dropped, 0u);  // the stream must exercise the drop path

  // Delta side applies the identical stream in 4 uneven batches.
  size_t applied_total = 0, dropped_total = 0;
  std::vector<bool> ever_touched(num_shards, false);
  const size_t batch_sizes[] = {7, 20, 1, 32};
  size_t cursor = 0;
  for (size_t batch_size : batch_sizes) {
    std::vector<WalRecord> batch(
        stream.begin() + cursor,
        stream.begin() + std::min(cursor + batch_size, stream.size()));
    cursor += batch.size();
    auto delta = builder.value()->ApplyBatch(batch);
    delta.status().CheckOK();
    applied_total += delta.value().records_applied;
    dropped_total += delta.value().records_dropped;
    for (ShardDelta& shard : delta.value().shards) {
      ever_touched[shard.shard_id] = true;
      delta_router.value()
          ->ApplyShardDelta(shard.shard_id, std::move(shard.snapshot),
                            shard.reviews_added)
          .CheckOK();
    }
  }
  ASSERT_EQ(cursor, stream.size());
  // The stream must republish every shard at least once — the deep
  // snapshot comparison below relies on each shard having picked up the
  // grown catalog (a shard never touched would, by design, keep its
  // pre-stream snapshot).
  for (size_t s = 0; s < num_shards; ++s) {
    ASSERT_TRUE(ever_touched[s]) << "stream never touched shard " << s;
  }
  EXPECT_EQ(applied_total, stream.size() - dropped);
  EXPECT_EQ(dropped_total, dropped);

  auto final_full = IndexedCorpus::Build(rebuilt);
  final_full.status().CheckOK();
  auto rebuild_router =
      ShardRouter::Create(initial.value(), num_shards, SerialRouterOptions());
  rebuild_router.status().CheckOK();
  ASSERT_EQ(rebuild_router.value()->bounds(), delta_router.value()->bounds());
  for (size_t s = 0; s < num_shards; ++s) {
    rebuild_router.value()->SwapShardCorpus(s, final_full.value()).CheckOK();
  }

  // Snapshot bit-identity, shard by shard.
  for (size_t s = 0; s < num_shards; ++s) {
    ExpectSameSnapshot(*delta_router.value()->shard_engine(s).corpus(),
                       *rebuild_router.value()->shard_engine(s).corpus(),
                       "shard " + std::to_string(s));
  }

  // Response payload identity for EVERY final instance target —
  // including any instance the streamed reviews created.
  for (const ProblemInstance& instance : final_full.value()->instances()) {
    SelectRequest request;
    request.target_id = instance.target().id;
    request.selector = "CompaReSetSGreedy";
    ExpectSameResponse(delta_router.value()->Select(request),
                       rebuild_router.value()->Select(request),
                       "target " + request.target_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, DeltaOracleTest,
                         ::testing::Values(1u, 2u, 4u));

// A hand-built catalog where streamed reviews flip a product eligible:
// the delta path must materialize the NEW instances (p4 as comparative
// in p1's instance, p4 as a fresh target) exactly as a rebuild does.
TEST(DeltaEligibilityTest, StreamedReviewsCreateNewInstancesIdentically) {
  Corpus base("hand");
  AspectId battery = base.catalog().Intern("battery");
  auto add = [&](const std::string& id, size_t reviews,
                 std::vector<std::string> also) {
    Product product;
    product.id = id;
    product.title = "product " + id;
    product.also_bought = std::move(also);
    for (size_t r = 0; r < reviews; ++r) {
      Review review;
      review.id = id + "-r" + std::to_string(r);
      review.reviewer_id = "u" + std::to_string(r);
      review.text = "review of " + id;
      review.rating = 4.0;
      review.opinions.push_back({battery, Polarity::kPositive, 1.0});
      product.reviews.push_back(review);
    }
    base.AddProduct(std::move(product)).CheckOK();
  };
  add("p1", 2, {"p2", "p3", "p4"});
  add("p2", 2, {});
  add("p3", 2, {});
  add("p4", 1, {"p1", "p2"});  // under-reviewed: no instance yet
  add("p5", 2, {"p1", "p2"});
  base.Finalize();

  auto initial = IndexedCorpus::Build(base);
  initial.status().CheckOK();
  // p4 is ineligible, so initially: p1 -> {p2, p3}, p5 -> {p1, p2}.
  ASSERT_EQ(initial.value()->num_instances(), 2u);

  auto router =
      ShardRouter::Create(initial.value(), 2, SerialRouterOptions());
  router.status().CheckOK();
  auto builder = DeltaCorpusBuilder::Create(base, router.value()->bounds(), {});
  builder.status().CheckOK();

  // Only catalog-known aspects: a brand-new aspect name would grow the
  // rebuilt side's catalog everywhere while the delta path's UNTOUCHED
  // shard keeps the old one — a real (and intended) divergence this
  // test is not about. Aspect-set growth is covered by the oracle
  // sweep, where every shard is republished.
  WalRecord flip;
  flip.product_id = "p4";
  flip.review_id = "stream-flip";
  flip.reviewer_id = "u9";
  flip.text = "second review of p4";
  flip.rating = 3.0;
  flip.opinions.push_back({"battery", Polarity::kPositive, 1.0});
  Corpus rebuilt = base;
  ApplyWalRecordToCorpus(flip, &rebuilt).CheckOK();

  auto delta = builder.value()->ApplyBatch({flip});
  delta.status().CheckOK();
  EXPECT_EQ(delta.value().records_applied, 1u);
  for (ShardDelta& shard : delta.value().shards) {
    router.value()
        ->ApplyShardDelta(shard.shard_id, std::move(shard.snapshot),
                          shard.reviews_added)
        .CheckOK();
  }

  auto final_full = IndexedCorpus::Build(rebuilt);
  final_full.status().CheckOK();
  // p4 now has 2 reviews: p1 gains it as a comparative AND p4 itself
  // becomes a target instance.
  ASSERT_EQ(final_full.value()->num_instances(), 3u);

  auto rebuild_router =
      ShardRouter::Create(initial.value(), 2, SerialRouterOptions());
  rebuild_router.status().CheckOK();
  for (size_t s = 0; s < 2; ++s) {
    rebuild_router.value()->SwapShardCorpus(s, final_full.value()).CheckOK();
  }
  for (size_t s = 0; s < 2; ++s) {
    ExpectSameSnapshot(*router.value()->shard_engine(s).corpus(),
                       *rebuild_router.value()->shard_engine(s).corpus(),
                       "shard " + std::to_string(s));
  }
}

// Two also-bought clusters with no cross-links: partitioned into two
// shards, each shard's closure is exactly its own cluster, so a record
// landing in cluster A provably cannot touch cluster B's shard. (The
// synthetic generator's graph is too dense for this — every product
// lands in every shard's closure there.)
Corpus TwoClusterCorpus() {
  Corpus base("clusters");
  AspectId battery = base.catalog().Intern("battery");
  AspectId screen = base.catalog().Intern("screen");
  auto add = [&](const std::string& id, std::vector<std::string> also) {
    Product product;
    product.id = id;
    product.title = "product " + id;
    product.also_bought = std::move(also);
    for (size_t r = 0; r < 2; ++r) {
      Review review;
      review.id = id + "-r" + std::to_string(r);
      review.reviewer_id = "u" + std::to_string(r);
      review.text = "review " + std::to_string(r) + " of " + id;
      review.rating = 3.0 + static_cast<double>(r);
      review.opinions.push_back(
          {r == 0 ? battery : screen,
           r == 0 ? Polarity::kPositive : Polarity::kNegative, 1.0});
      product.reviews.push_back(review);
    }
    base.AddProduct(std::move(product)).CheckOK();
  };
  add("a1", {"a2", "a3"});
  add("a2", {"a1", "a3"});
  add("a3", {"a1", "a2"});
  add("b1", {"b2", "b3"});
  add("b2", {"b1", "b3"});
  add("b3", {"b1", "b2"});
  base.Finalize();
  return base;
}

// PR-5-style isolation assertion: a delta that only lands on shard A
// leaves shard B's epoch, result memo, and vector cache warm.
TEST(DeltaWarmCacheTest, UntouchedShardKeepsItsCachesAcrossADeltaApply) {
  Corpus base = TwoClusterCorpus();
  auto initial = IndexedCorpus::Build(base);
  initial.status().CheckOK();
  auto router =
      ShardRouter::Create(initial.value(), 2, SerialRouterOptions());
  router.status().CheckOK();
  auto builder = DeltaCorpusBuilder::Create(base, router.value()->bounds(), {});
  builder.status().CheckOK();

  // A product that lives ONLY in shard 0's closure, and is already
  // review-eligible (so more reviews cannot flip any slice): reviews
  // landing on it cannot touch shard 1 in any way. The shared_ptrs keep
  // the pre-delta snapshots alive past the apply below.
  std::shared_ptr<const IndexedCorpus> shard0 =
      router.value()->shard_engine(0).corpus();
  std::shared_ptr<const IndexedCorpus> shard1 =
      router.value()->shard_engine(1).corpus();
  std::string only_in_0;
  for (const Product& product : shard0->corpus().products()) {
    if (product.reviews.size() >= 2 &&
        shard1->FindProduct(product.id) == nullptr) {
      only_in_0 = product.id;
      break;
    }
  }
  ASSERT_FALSE(only_in_0.empty());

  // Warm shard 1: the repeat must come whole from the result memo.
  SelectRequest warm;
  warm.target_id = shard1->instances()[0].target().id;
  warm.selector = "CompaReSetSGreedy";
  auto first = router.value()->Select(warm);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first.value().result_cache_hit);

  uint64_t epoch0_before = router.value()->shard_engine(0).corpus_epoch();
  uint64_t epoch1_before = router.value()->shard_engine(1).corpus_epoch();

  auto delta =
      builder.value()->ApplyBatch({StreamRecord(only_in_0, 0, base.catalog()),
                                   StreamRecord(only_in_0, 1, base.catalog())});
  delta.status().CheckOK();
  ASSERT_EQ(delta.value().shards.size(), 1u);
  EXPECT_EQ(delta.value().shards[0].shard_id, 0u);
  EXPECT_EQ(delta.value().shards[0].reviews_added, 2u);
  for (ShardDelta& shard : delta.value().shards) {
    router.value()
        ->ApplyShardDelta(shard.shard_id, std::move(shard.snapshot),
                          shard.reviews_added)
        .CheckOK();
  }

  // Only shard 0 moved.
  EXPECT_EQ(router.value()->shard_engine(0).corpus_epoch(), epoch0_before + 1);
  EXPECT_EQ(router.value()->shard_engine(1).corpus_epoch(), epoch1_before);
  EXPECT_EQ(router.value()->shard_engine(0).ingested_reviews(), 2u);
  EXPECT_EQ(router.value()->shard_engine(1).ingested_reviews(), 0u);

  // Shard 1's memo survived: the exact repeat is a whole-response hit,
  // and its trace still reports zero ingested records.
  auto repeat = router.value()->Select(warm);
  ASSERT_TRUE(repeat.ok()) << repeat.status();
  EXPECT_TRUE(repeat.value().result_cache_hit);
  EXPECT_EQ(repeat.value().trace.ingest_records, 0u);
  EXPECT_EQ(repeat.value().trace.corpus_epoch, epoch1_before);

  // Shard 0 answers from the fresh snapshot: epoch moved, and its trace
  // carries the ingest freshness.
  SelectRequest moved;
  moved.target_id = shard0->instances()[0].target().id;
  moved.selector = "CompaReSetSGreedy";
  auto after = router.value()->Select(moved);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after.value().trace.corpus_epoch, epoch0_before + 1);
  EXPECT_EQ(after.value().trace.ingest_records, 2u);
}

// A batch with nothing applicable publishes nothing: no shard deltas,
// no epoch movement.
TEST(DeltaBuilderTest, AllUnknownBatchPublishesNothing) {
  Corpus base = MakeSynthetic(60);
  base.Finalize();
  auto initial = IndexedCorpus::Build(base);
  initial.status().CheckOK();
  auto router = ShardRouter::Create(initial.value(), 2, SerialRouterOptions());
  router.status().CheckOK();
  auto builder = DeltaCorpusBuilder::Create(base, router.value()->bounds(), {});
  builder.status().CheckOK();

  auto delta = builder.value()->ApplyBatch(
      {StreamRecord("ghost-1", 0, base.catalog()),
       StreamRecord("ghost-2", 1, base.catalog())});
  delta.status().CheckOK();
  EXPECT_EQ(delta.value().records_applied, 0u);
  EXPECT_EQ(delta.value().records_dropped, 2u);
  EXPECT_TRUE(delta.value().shards.empty());
}

// End-to-end through the IngestDriver: records committed to a WAL file
// are drained into served snapshots, the offset advances, unknown
// products count as drops, and a second drain with no new bytes is a
// no-op.
TEST(IngestDriverTest, DrainsTheWalIntoServedSnapshots) {
  Corpus base = MakeSynthetic(80);
  base.Finalize();
  auto initial = IndexedCorpus::Build(base);
  initial.status().CheckOK();
  auto router = ShardRouter::Create(initial.value(), 2, SerialRouterOptions());
  router.status().CheckOK();

  std::string path = ::testing::TempDir() + "/ingest_driver_test.wal";
  std::remove(path.c_str());

  IngestDriverOptions options;
  options.wal_path = path;
  options.batch_size = 4;
  auto driver = IngestDriver::Create(base, router.value().get(), options);
  driver.status().CheckOK();

  // A drain before the producer exists reports zero work.
  auto empty = driver.value()->DrainOnce();
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(empty.value().records_applied, 0u);

  // Producer commits 10 records (1 unknown) and syncs.
  std::vector<WalRecord> stream = OracleStream(base, 10);
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (const WalRecord& record : stream) {
      ASSERT_TRUE(writer.value().Append(record).ok());
    }
    ASSERT_TRUE(writer.value().Close().ok());
  }

  auto drained = driver.value()->DrainOnce();
  ASSERT_TRUE(drained.ok()) << drained.status();
  EXPECT_EQ(drained.value().records_applied, 9u);
  EXPECT_EQ(drained.value().records_dropped, 1u);
  EXPECT_EQ(drained.value().batches, 3u);  // ceil(10 / 4)
  EXPECT_GT(drained.value().shards_touched, 0u);
  EXPECT_GT(driver.value()->offset(), 0u);

  // The served state equals a full rebuild of base + the stream.
  Corpus rebuilt = base;
  for (const WalRecord& record : stream) {
    Status applied = ApplyWalRecordToCorpus(record, &rebuilt);
    if (!applied.ok()) {
      ASSERT_EQ(applied.code(), StatusCode::kNotFound);
    }
  }
  auto final_full = IndexedCorpus::Build(rebuilt);
  final_full.status().CheckOK();
  auto rebuild_router =
      ShardRouter::Create(initial.value(), 2, SerialRouterOptions());
  rebuild_router.status().CheckOK();
  for (size_t s = 0; s < 2; ++s) {
    rebuild_router.value()->SwapShardCorpus(s, final_full.value()).CheckOK();
  }
  for (size_t s = 0; s < 2; ++s) {
    ExpectSameSnapshot(*router.value()->shard_engine(s).corpus(),
                       *rebuild_router.value()->shard_engine(s).corpus(),
                       "shard " + std::to_string(s));
  }

  // Nothing new on disk: the next drain consumes nothing.
  auto again = driver.value()->DrainOnce();
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again.value().records_applied, 0u);
  EXPECT_EQ(again.value().bytes_consumed, 0u);

  IngestDrainStats totals = driver.value()->TotalStats();
  EXPECT_EQ(totals.records_applied, 9u);
  EXPECT_EQ(totals.records_dropped, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace comparesets
