#include <gtest/gtest.h>

#include "nlp/lexicon.h"
#include "nlp/sentiment_lexicon.h"

namespace comparesets {
namespace {

TEST(AspectLexiconTest, AddAndLookup) {
  AspectLexicon lexicon;
  ASSERT_TRUE(lexicon.AddTerm("battery", "battery").ok());
  ASSERT_TRUE(lexicon.AddTerm("batteries", "battery").ok());
  EXPECT_EQ(lexicon.AspectOf("battery"), "battery");
  EXPECT_EQ(lexicon.AspectOf("batteries"), "battery");
  EXPECT_TRUE(lexicon.Contains("battery"));
  EXPECT_FALSE(lexicon.Contains("screen"));
  EXPECT_EQ(lexicon.AspectOf("screen"), "");
  EXPECT_EQ(lexicon.num_terms(), 2u);
}

TEST(AspectLexiconTest, ReRegisteringSameMappingIsOk) {
  AspectLexicon lexicon;
  ASSERT_TRUE(lexicon.AddTerm("lens", "lens").ok());
  EXPECT_TRUE(lexicon.AddTerm("lens", "lens").ok());
}

TEST(AspectLexiconTest, ConflictingMappingRejected) {
  AspectLexicon lexicon;
  ASSERT_TRUE(lexicon.AddTerm("lens", "lens").ok());
  Status status = lexicon.AddTerm("lens", "camera");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(AspectLexiconTest, AspectsListsDistinctSorted) {
  AspectLexicon lexicon;
  lexicon.AddTerm("battery", "battery").CheckOK();
  lexicon.AddTerm("batteries", "battery").CheckOK();
  lexicon.AddTerm("screen", "display").CheckOK();
  EXPECT_EQ(lexicon.Aspects(),
            (std::vector<std::string>{"battery", "display"}));
}

TEST(SentimentLexiconTest, AddAndStrength) {
  SentimentLexicon lexicon;
  lexicon.AddWord("stellar", 1.7);
  lexicon.AddWord("meh", -0.2);
  EXPECT_DOUBLE_EQ(lexicon.StrengthOf("stellar"), 1.7);
  EXPECT_DOUBLE_EQ(lexicon.StrengthOf("meh"), -0.2);
  EXPECT_DOUBLE_EQ(lexicon.StrengthOf("unknown"), 0.0);
  EXPECT_TRUE(lexicon.IsOpinionWord("stellar"));
  EXPECT_FALSE(lexicon.IsOpinionWord("unknown"));
}

TEST(SentimentLexiconTest, OverwriteKeepsLatest) {
  SentimentLexicon lexicon;
  lexicon.AddWord("fine", 0.5);
  lexicon.AddWord("fine", 1.0);
  EXPECT_DOUBLE_EQ(lexicon.StrengthOf("fine"), 1.0);
}

TEST(SentimentLexiconTest, DefaultLexiconHasBothPolarities) {
  const SentimentLexicon& lexicon = SentimentLexicon::Default();
  EXPECT_GT(lexicon.size(), 100u);
  EXPECT_GT(lexicon.StrengthOf("great"), 0.0);
  EXPECT_GT(lexicon.StrengthOf("excellent"), lexicon.StrengthOf("good"));
  EXPECT_LT(lexicon.StrengthOf("terrible"), 0.0);
  EXPECT_LT(lexicon.StrengthOf("terrible"), lexicon.StrengthOf("bad"));
}

TEST(SentimentLexiconTest, NegatorsRecognized) {
  const SentimentLexicon& lexicon = SentimentLexicon::Default();
  EXPECT_TRUE(lexicon.IsNegator("not"));
  EXPECT_TRUE(lexicon.IsNegator("never"));
  EXPECT_TRUE(lexicon.IsNegator("dont"));
  EXPECT_FALSE(lexicon.IsNegator("battery"));
  EXPECT_FALSE(lexicon.IsNegator("great"));
}

}  // namespace
}  // namespace comparesets
