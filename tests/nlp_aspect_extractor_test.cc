#include "nlp/aspect_extractor.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace comparesets {
namespace {

std::vector<RatedText> RepeatedReviews() {
  // "battery" correlates strongly with rating; "shipping" appears
  // everywhere (no correlation); "zebra" is rare.
  std::vector<RatedText> reviews;
  for (int i = 0; i < 12; ++i) {
    bool good = i % 2 == 0;
    RatedText review;
    review.text = good ? "the battery is great, shipping was fine"
                       : "shipping was fine but it broke quickly";
    review.rating = good ? 5.0 : 1.0;
    reviews.push_back(review);
  }
  reviews.push_back({"zebra themed product, shipping fine", 3.0});
  return reviews;
}

TEST(CorrelationTest, PerfectAndZero) {
  std::vector<bool> presence = {true, false, true, false};
  std::vector<double> ratings = {5.0, 1.0, 5.0, 1.0};
  EXPECT_NEAR(PresenceRatingCorrelation(presence, ratings), 1.0, 1e-12);

  std::vector<bool> always = {true, true, true, true};
  EXPECT_DOUBLE_EQ(PresenceRatingCorrelation(always, ratings), 0.0);

  std::vector<double> flat = {3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(PresenceRatingCorrelation(presence, flat), 0.0);
}

TEST(CorrelationTest, AbsoluteValueReported) {
  // Negative association still ranks high (negative aspects matter too).
  std::vector<bool> presence = {true, false, true, false};
  std::vector<double> ratings = {1.0, 5.0, 1.0, 5.0};
  EXPECT_NEAR(PresenceRatingCorrelation(presence, ratings), 1.0, 1e-12);
}

TEST(CorrelationTest, EmptyOrMismatchedIsZero) {
  EXPECT_DOUBLE_EQ(PresenceRatingCorrelation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(PresenceRatingCorrelation({true}, {1.0, 2.0}), 0.0);
}

TEST(MineAspectLexiconTest, CorrelatedTermRanksAboveUncorrelated) {
  AspectMiningOptions options;
  options.min_review_frequency = 2;
  options.max_candidates = 50;
  options.max_aspects = 1;  // Keep only the single best term.
  auto lexicon = MineAspectLexicon(RepeatedReviews(),
                                   SentimentLexicon::Default(), options);
  ASSERT_TRUE(lexicon.ok());
  // "battery" (or its stem) must be the top aspect: it alone separates
  // 5-star from 1-star reviews.
  EXPECT_TRUE(lexicon.value().Contains("battery"))
      << "got aspects: " << [&] {
           std::string all;
           for (const auto& a : lexicon.value().Aspects()) all += a + " ";
           return all;
         }();
}

TEST(MineAspectLexiconTest, OpinionWordsExcluded) {
  auto lexicon = MineAspectLexicon(RepeatedReviews());
  ASSERT_TRUE(lexicon.ok());
  EXPECT_FALSE(lexicon.value().Contains("great"));
  EXPECT_FALSE(lexicon.value().Contains("broke"));
}

TEST(MineAspectLexiconTest, StopwordsExcluded) {
  auto lexicon = MineAspectLexicon(RepeatedReviews());
  ASSERT_TRUE(lexicon.ok());
  EXPECT_FALSE(lexicon.value().Contains("the"));
  EXPECT_FALSE(lexicon.value().Contains("was"));
}

TEST(MineAspectLexiconTest, RareTermsFilteredByFrequency) {
  AspectMiningOptions options;
  options.min_review_frequency = 3;
  auto lexicon = MineAspectLexicon(RepeatedReviews(),
                                   SentimentLexicon::Default(), options);
  ASSERT_TRUE(lexicon.ok());
  EXPECT_FALSE(lexicon.value().Contains("zebra"));  // Appears once.
}

TEST(MineAspectLexiconTest, MaxAspectsHonored) {
  AspectMiningOptions options;
  options.min_review_frequency = 1;
  options.max_aspects = 2;
  auto lexicon = MineAspectLexicon(RepeatedReviews(),
                                   SentimentLexicon::Default(), options);
  ASSERT_TRUE(lexicon.ok());
  EXPECT_LE(lexicon.value().Aspects().size(), 2u);
}

TEST(MineAspectLexiconTest, EmptyInputRejected) {
  EXPECT_FALSE(MineAspectLexicon({}).ok());
}

}  // namespace
}  // namespace comparesets
