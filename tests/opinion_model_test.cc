#include "opinion/opinion_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_fixtures.h"

namespace comparesets {
namespace {

using testing::kBattery;
using testing::kLens;
using testing::kNeg;
using testing::kPos;
using testing::kPrice;
using testing::kQuality;
using testing::MakeReview;

TEST(OpinionModelTest, DimsPerDefinition) {
  EXPECT_EQ(OpinionModel::Binary(5).opinion_dims(), 10u);
  EXPECT_EQ(OpinionModel::ThreePolarity(5).opinion_dims(), 15u);
  EXPECT_EQ(OpinionModel::UnaryScale(5).opinion_dims(), 5u);
}

TEST(OpinionModelTest, DefinitionNames) {
  EXPECT_STREQ(OpinionDefinitionName(OpinionDefinition::kBinary), "binary");
  EXPECT_STREQ(OpinionDefinitionName(OpinionDefinition::kThreePolarity),
               "3-polarity");
  EXPECT_STREQ(OpinionDefinitionName(OpinionDefinition::kUnaryScale),
               "unary-scale");
}

// --- Working Example 1 (paper §2.1.1) -------------------------------------

TEST(OpinionModelTest, WorkingExampleTargetOpinionVector) {
  Product target = testing::WorkingExampleTarget();
  OpinionModel model = OpinionModel::Binary(5);
  Vector tau = model.OpinionVector(AllReviews(target));
  // τ1 = (2/6, 4/6, 2/6, 2/6, 2/6, 2/6, 0, 0, 0, 0).
  Vector expected{2.0 / 6, 4.0 / 6, 2.0 / 6, 2.0 / 6, 2.0 / 6, 2.0 / 6,
                  0, 0, 0, 0};
  EXPECT_TRUE(tau.AlmostEquals(expected))
      << "got " << tau.ToString() << " want " << expected.ToString();
}

TEST(OpinionModelTest, WorkingExampleTargetAspectVector) {
  Product target = testing::WorkingExampleTarget();
  OpinionModel model = OpinionModel::Binary(5);
  Vector gamma = model.AspectVector(AllReviews(target));
  // Γ = (6/6, 4/6, 4/6, 0, 0).
  Vector expected{1.0, 4.0 / 6, 4.0 / 6, 0.0, 0.0};
  EXPECT_TRUE(gamma.AlmostEquals(expected))
      << "got " << gamma.ToString() << " want " << expected.ToString();
}

TEST(OpinionModelTest, WorkingExampleOptimalTripleMatchesTargets) {
  // Selecting the proportional triple {r1, r2, r3} reproduces τ1 and Γ
  // exactly (the paper's S1 = {r5, r6, r7} situation).
  Product target = testing::WorkingExampleTarget();
  OpinionModel model = OpinionModel::Binary(5);
  ReviewSet triple = {&target.reviews[0], &target.reviews[1],
                      &target.reviews[2]};
  Vector pi = model.OpinionVector(triple);
  Vector phi = model.AspectVector(triple);
  EXPECT_TRUE(pi.AlmostEquals(model.OpinionVector(AllReviews(target))));
  EXPECT_TRUE(phi.AlmostEquals(model.AspectVector(AllReviews(target))));
}

// --- General behaviour -----------------------------------------------------

TEST(OpinionModelTest, EmptySetGivesZeroVectors) {
  OpinionModel model = OpinionModel::Binary(3);
  EXPECT_DOUBLE_EQ(model.OpinionVector({}).NormL1(), 0.0);
  EXPECT_DOUBLE_EQ(model.AspectVector({}).NormL1(), 0.0);
}

TEST(OpinionModelTest, AspectVectorMaxEntryIsOne) {
  // Normalization by the max count means some entry equals 1 whenever
  // any aspect is mentioned.
  Product target = testing::WorkingExampleTarget();
  OpinionModel model = OpinionModel::Binary(5);
  for (size_t take = 1; take <= target.reviews.size(); ++take) {
    ReviewSet subset;
    for (size_t r = 0; r < take; ++r) subset.push_back(&target.reviews[r]);
    Vector phi = model.AspectVector(subset);
    EXPECT_NEAR(phi.Max(), 1.0, 1e-12) << "take=" << take;
  }
}

TEST(OpinionModelTest, OpinionCountedOncePerReview) {
  // A review mentioning (battery, +) twice counts once.
  Review review = MakeReview("r", {{kBattery, kPos}, {kBattery, kPos}});
  OpinionModel model = OpinionModel::Binary(5);
  Vector pi = model.OpinionVector({&review});
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(OpinionModelTest, NeutralIgnoredInBinaryOpinionButKeptInAspect) {
  Review review = MakeReview("r", {{kBattery, Polarity::kNeutral}});
  OpinionModel model = OpinionModel::Binary(5);
  EXPECT_DOUBLE_EQ(model.OpinionVector({&review}).NormL1(), 0.0);
  EXPECT_DOUBLE_EQ(model.AspectVector({&review})[kBattery], 1.0);
}

TEST(OpinionModelTest, ThreePolarityTracksNeutralSeparately) {
  Review r1 = MakeReview("r1", {{kBattery, kPos}});
  Review r2 = MakeReview("r2", {{kBattery, Polarity::kNeutral}});
  OpinionModel model = OpinionModel::ThreePolarity(2);
  Vector pi = model.OpinionVector({&r1, &r2});
  // Dims per aspect: (+, −, neutral). battery count = 2 => M = 2.
  EXPECT_DOUBLE_EQ(pi[0], 0.5);  // battery+.
  EXPECT_DOUBLE_EQ(pi[1], 0.0);  // battery−.
  EXPECT_DOUBLE_EQ(pi[2], 0.5);  // battery neutral.
}

TEST(OpinionModelTest, UnaryScaleSigmoidOfSummedStrengths) {
  Review r1 = MakeReview("r1", {{kBattery, kPos}});
  r1.opinions[0].strength = 2.0;
  Review r2 = MakeReview("r2", {{kBattery, kNeg}});
  r2.opinions[0].strength = 0.5;
  OpinionModel model = OpinionModel::UnaryScale(2);
  Vector pi = model.OpinionVector({&r1, &r2});
  EXPECT_NEAR(pi[0], Sigmoid(1.5), 1e-12);
  EXPECT_DOUBLE_EQ(pi[1], 0.0);  // Unmentioned aspect stays 0.
}

TEST(OpinionModelTest, UnaryScaleNeutralMentionsMarkAspect) {
  Review review = MakeReview("r", {{kBattery, Polarity::kNeutral}});
  OpinionModel model = OpinionModel::UnaryScale(2);
  Vector pi = model.OpinionVector({&review});
  EXPECT_NEAR(pi[0], 0.5, 1e-12);  // Sigmoid(0) for mentioned aspect.
}

TEST(SigmoidTest, KnownValuesAndStability) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(Sigmoid(-1000.0)));
  EXPECT_FALSE(std::isnan(Sigmoid(1000.0)));
}

TEST(OpinionModelTest, ReviewColumnsMatchSingletonVectors) {
  // For binary/3-polarity, the design column of review r equals the
  // unnormalized indicator; for a singleton set M = 1, so the opinion
  // vector of {r} must equal the column.
  Review review = MakeReview(
      "r", {{kBattery, kPos}, {kLens, kNeg}, {kQuality, Polarity::kNeutral}});
  for (OpinionModel model :
       {OpinionModel::Binary(5), OpinionModel::ThreePolarity(5)}) {
    Vector column = model.ReviewOpinionColumn(review);
    Vector pi = model.OpinionVector({&review});
    EXPECT_TRUE(column.AlmostEquals(pi))
        << OpinionDefinitionName(model.definition());
  }
}

TEST(OpinionModelTest, AspectColumnIsPresenceIndicator) {
  Review review = MakeReview("r", {{kBattery, kPos}, {kPrice, kNeg}});
  OpinionModel model = OpinionModel::Binary(5);
  Vector column = model.ReviewAspectColumn(review);
  EXPECT_TRUE(column.AlmostEquals(Vector{1.0, 0.0, 0.0, 1.0, 0.0}));
}

TEST(SelectReviewsTest, MaterializesPointers) {
  Product target = testing::WorkingExampleTarget();
  ReviewSet subset = SelectReviews(target, {0, 2});
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset[0]->id, "r1");
  EXPECT_EQ(subset[1]->id, "r3");
  EXPECT_EQ(AllReviews(target).size(), target.reviews.size());
}

}  // namespace
}  // namespace comparesets
