#include "text/rouge.h"

#include <gtest/gtest.h>

namespace comparesets {
namespace {

TEST(RougeTest, IdenticalTextsScorePerfect) {
  const char* text = "the battery is great and charges quickly";
  RougeTriple scores = RougeAll(text, text);
  EXPECT_DOUBLE_EQ(scores.rouge1.f1, 1.0);
  EXPECT_DOUBLE_EQ(scores.rouge2.f1, 1.0);
  EXPECT_DOUBLE_EQ(scores.rougeL.f1, 1.0);
}

TEST(RougeTest, DisjointTextsScoreZero) {
  RougeTriple scores = RougeAll("alpha beta gamma", "delta epsilon zeta");
  EXPECT_DOUBLE_EQ(scores.rouge1.f1, 0.0);
  EXPECT_DOUBLE_EQ(scores.rouge2.f1, 0.0);
  EXPECT_DOUBLE_EQ(scores.rougeL.f1, 0.0);
}

TEST(RougeTest, Rouge1HandComputed) {
  // candidate: {the, cat, sat} reference: {the, cat, ran, far}
  // overlap = 2, P = 2/3, R = 2/4, F1 = 2·(2/3)(1/2)/((2/3)+(1/2)) = 4/7.
  RougeScore score = Rouge1("the cat sat", "the cat ran far");
  EXPECT_NEAR(score.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(score.recall, 0.5, 1e-12);
  EXPECT_NEAR(score.f1, 4.0 / 7.0, 1e-12);
}

TEST(RougeTest, Rouge2HandComputed) {
  // candidate bigrams: {the-cat, cat-sat}; reference: {the-cat, cat-ran}.
  // overlap = 1, P = 1/2, R = 1/2, F1 = 1/2.
  RougeScore score = Rouge2("the cat sat", "the cat ran");
  EXPECT_NEAR(score.f1, 0.5, 1e-12);
}

TEST(RougeTest, RougeLUsesSubsequenceNotSubstring) {
  // LCS("a b c d", "a x b y d") = {a, b, d} = 3.
  // P = 3/4 (wrt candidate of len 4), R = 3/5.
  RougeScore score = RougeL("a b c d", "a x b y d");
  EXPECT_NEAR(score.precision, 0.75, 1e-12);
  EXPECT_NEAR(score.recall, 0.6, 1e-12);
}

TEST(RougeTest, F1SymmetricUnderSwap) {
  // P and R swap, so F1 (harmonic mean) is symmetric.
  const char* a = "the charger works great in the car";
  const char* b = "great charger for the car and the price";
  EXPECT_NEAR(RougeAll(a, b).rouge1.f1, RougeAll(b, a).rouge1.f1, 1e-12);
  EXPECT_NEAR(RougeAll(a, b).rougeL.f1, RougeAll(b, a).rougeL.f1, 1e-12);
  EXPECT_NEAR(RougeAll(a, b).rouge2.f1, RougeAll(b, a).rouge2.f1, 1e-12);
}

TEST(RougeTest, ScoresBoundedInUnitInterval) {
  const char* pairs[][2] = {
      {"one two three", "three two one"},
      {"a a a a", "a"},
      {"x", "x y z w v u"},
  };
  for (const auto& pair : pairs) {
    RougeTriple scores = RougeAll(pair[0], pair[1]);
    for (const RougeScore* s :
         {&scores.rouge1, &scores.rouge2, &scores.rougeL}) {
      EXPECT_GE(s->f1, 0.0);
      EXPECT_LE(s->f1, 1.0);
      EXPECT_GE(s->precision, 0.0);
      EXPECT_LE(s->precision, 1.0);
      EXPECT_GE(s->recall, 0.0);
      EXPECT_LE(s->recall, 1.0);
    }
  }
}

TEST(RougeTest, EmptyTextsHandled) {
  EXPECT_DOUBLE_EQ(RougeAll("", "").rouge1.f1, 0.0);
  EXPECT_DOUBLE_EQ(RougeAll("words here", "").rouge1.f1, 0.0);
  EXPECT_DOUBLE_EQ(RougeAll("", "words here").rougeL.f1, 0.0);
}

TEST(RougeTest, SingleTokenHasNoBigrams) {
  RougeScore score = Rouge2("word", "word");
  EXPECT_DOUBLE_EQ(score.f1, 0.0);
}

TEST(RougeTest, RepeatedTokensClipped) {
  // candidate "a a a" vs reference "a": overlap clipped to 1.
  RougeScore score = Rouge1("a a a", "a");
  EXPECT_NEAR(score.precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(score.recall, 1.0, 1e-12);
}

TEST(RougeTest, CaseAndPunctuationInsensitive) {
  RougeScore exact = Rouge1("The Battery, is GREAT!", "the battery is great");
  EXPECT_DOUBLE_EQ(exact.f1, 1.0);
}

TEST(RougeDocumentTest, CachedDocumentsMatchStringApi) {
  const char* a = "the puzzle pieces fit together well";
  const char* b = "the pieces of the puzzle are well made";
  RougeDocument da(a);
  RougeDocument db(b);
  RougeTriple cached = da.ScoreAgainst(db);
  RougeTriple direct = RougeAll(a, b);
  EXPECT_DOUBLE_EQ(cached.rouge1.f1, direct.rouge1.f1);
  EXPECT_DOUBLE_EQ(cached.rouge2.f1, direct.rouge2.f1);
  EXPECT_DOUBLE_EQ(cached.rougeL.f1, direct.rougeL.f1);
}

TEST(RougeTest, RougeLAtLeastAsSelectiveAsRouge1) {
  // LCS overlap <= unigram overlap, hence R-L F1 <= R-1 F1.
  const char* a = "one two three four five six";
  const char* b = "six five four three two one";
  RougeTriple scores = RougeAll(a, b);
  EXPECT_LE(scores.rougeL.f1, scores.rouge1.f1 + 1e-12);
}

TEST(RougeTripleTest, AccumulateAndAverage) {
  RougeTriple total;
  total += RougeAll("a b", "a b");
  total += RougeAll("x", "y");
  total /= 2.0;
  EXPECT_NEAR(total.rouge1.f1, 0.5, 1e-12);
}

}  // namespace
}  // namespace comparesets
