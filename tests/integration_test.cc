// End-to-end integration: synthetic corpus → selectors → similarity
// graph → core list → alignment / proxies / user study. Exercises the
// same pipeline the benchmark binaries run, at miniature scale.

#include <gtest/gtest.h>

#include <set>

#include "core/selector.h"
#include "data/statistics.h"
#include "eval/alignment.h"
#include "eval/information_loss.h"
#include "eval/runner.h"
#include "graph/targethks_baselines.h"
#include "graph/targethks_exact.h"
#include "graph/targethks_greedy.h"
#include "nlp/annotator.h"
#include "stats/user_study.h"
#include "text/tokenizer.h"

namespace comparesets {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RunnerConfig config;
    config.category = "Toy";
    config.num_products = 100;
    config.max_instances = 6;
    config.seed = 11;
    workload_ = new Workload(Workload::BuildSynthetic(config).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  static Workload* workload_;
};

Workload* PipelineTest::workload_ = nullptr;

TEST_F(PipelineTest, FullPipelineRunsAndNarrowsToCoreList) {
  SelectorOptions options;
  options.m = 3;
  auto selector = MakeSelector("CompaReSetS+");
  ASSERT_TRUE(selector.ok());
  auto run = RunSelector(*selector.value(), *workload_, options);
  ASSERT_TRUE(run.ok()) << run.status();

  for (size_t i = 0; i < workload_->num_instances(); ++i) {
    const InstanceVectors& vectors = workload_->vectors()[i];
    const std::vector<Selection>& selections =
        run.value().results[i].selections;

    SimilarityGraph graph = BuildSimilarityGraph(
        vectors, selections, options.lambda, options.mu);
    size_t k = std::min<size_t>(3, graph.num_vertices());

    auto exact = SolveTargetHksExact(graph, k);
    auto greedy = SolveTargetHksGreedy(graph, k);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_LE(greedy.value().weight, exact.value().weight + 1e-9);
    EXPECT_EQ(exact.value().vertices[0], 0u);

    AlignmentScores full = MeasureAlignment(workload_->instances()[i],
                                            selections);
    AlignmentScores core = MeasureAlignmentSubset(
        workload_->instances()[i], selections, exact.value().vertices);
    EXPECT_LE(core.among_pairs, full.among_pairs);
    EXPECT_GT(core.among_pairs, 0u);

    ExampleProxies proxies = ComputeExampleProxies(
        vectors, selections, exact.value().vertices);
    EXPECT_GE(proxies.informativeness, 0.0);
    EXPECT_LE(proxies.informativeness, 1.0);
  }
}

TEST_F(PipelineTest, CoreListAlignmentBeatsRandomList) {
  // Table 6 shape: the exact core list aligns better than a random one.
  SelectorOptions options;
  options.m = 3;
  auto run = RunSelector(*MakeSelector("CompaReSetS+").ValueOrDie(),
                         *workload_, options);
  ASSERT_TRUE(run.ok());

  double exact_total = 0.0;
  double random_total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < workload_->num_instances(); ++i) {
    const InstanceVectors& vectors = workload_->vectors()[i];
    const auto& selections = run.value().results[i].selections;
    SimilarityGraph graph = BuildSimilarityGraph(
        vectors, selections, options.lambda, options.mu);
    if (graph.num_vertices() < 5) continue;
    auto exact = SolveTargetHksExact(graph, 3);
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(exact.value().weight, 0.0);
    AlignmentScores exact_scores = MeasureAlignmentSubset(
        workload_->instances()[i], selections, exact.value().vertices);
    exact_total += exact_scores.among_items.rougeL.f1;

    // Random core list, averaged over several draws for stability.
    double random_mean = 0.0;
    for (uint64_t seed = 0; seed < 5; ++seed) {
      auto random = SolveTargetHksRandom(graph, 3, seed);
      ASSERT_TRUE(random.ok());
      AlignmentScores random_scores = MeasureAlignmentSubset(
          workload_->instances()[i], selections, random.value().vertices);
      random_mean += random_scores.among_items.rougeL.f1;
    }
    random_total += random_mean / 5.0;
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  // ROUGE alignment of the exact core list dominates Random in trend
  // (Table 6); per-instance it is only correlated with the optimized
  // graph weight, so allow small-sample noise here.
  EXPECT_GE(exact_total, random_total - 0.02 * static_cast<double>(counted));
}

TEST_F(PipelineTest, UserStudyOrderingEmergesFromPipeline) {
  // Build per-algorithm proxies from real pipeline outputs and check the
  // Table 7 mean ordering: CompaReSetS+ >= Random on Q1/Q3.
  SelectorOptions options;
  options.m = 3;
  std::vector<ExampleProxies> plus_proxies;
  std::vector<ExampleProxies> random_proxies;

  auto plus_run = RunSelector(*MakeSelector("CompaReSetS+").ValueOrDie(),
                              *workload_, options);
  auto random_run = RunSelector(*MakeSelector("Random").ValueOrDie(),
                                *workload_, options);
  ASSERT_TRUE(plus_run.ok());
  ASSERT_TRUE(random_run.ok());

  for (size_t i = 0; i < workload_->num_instances(); ++i) {
    const InstanceVectors& vectors = workload_->vectors()[i];
    SimilarityGraph graph = BuildSimilarityGraph(
        vectors, plus_run.value().results[i].selections, options.lambda,
        options.mu);
    size_t k = std::min<size_t>(3, graph.num_vertices());
    auto core = SolveTargetHksExact(graph, k);
    ASSERT_TRUE(core.ok());
    plus_proxies.push_back(ComputeExampleProxies(
        vectors, plus_run.value().results[i].selections,
        core.value().vertices));
    random_proxies.push_back(ComputeExampleProxies(
        vectors, random_run.value().results[i].selections,
        core.value().vertices));
  }

  auto plus_study = SimulateUserStudy(plus_proxies);
  auto random_study = SimulateUserStudy(random_proxies);
  ASSERT_TRUE(plus_study.ok());
  ASSERT_TRUE(random_study.ok());
  EXPECT_GE(plus_study.value().q1_mean, random_study.value().q1_mean);
  EXPECT_GE(plus_study.value().q3_mean, random_study.value().q3_mean);
}

TEST_F(PipelineTest, InformationLossShrinksWithM) {
  // Figure 11 trend end-to-end: larger m loses less information.
  auto selector = MakeSelector("CompaReSetS+").ValueOrDie();
  double previous = 1e18;
  for (size_t m : {1u, 3u, 10u}) {
    SelectorOptions options;
    options.m = m;
    double total = 0.0;
    for (size_t i = 0; i < workload_->num_instances(); ++i) {
      auto result = selector->Select(workload_->vectors()[i], options);
      ASSERT_TRUE(result.ok());
      total += MeasureInformationLoss(workload_->vectors()[i],
                                      result.value().selections)
                   .delta_all_items;
    }
    EXPECT_LE(total, previous + 0.2) << "m=" << m;  // Monotone-ish trend.
    previous = total;
  }
}

TEST_F(PipelineTest, AnnotatorRecoversGeneratedAspects) {
  // The generated surface text must be machine-readable by the nlp
  // pipeline: annotate generated reviews with a lexicon over the
  // category's aspect nouns and compare with the ground truth mentions.
  const Corpus& corpus = workload_->corpus();
  AspectLexicon lexicon;
  TokenizerOptions stem_options;
  stem_options.light_stem = true;
  for (const std::string& aspect : corpus.catalog().names()) {
    lexicon.AddTerm(LightStem(aspect), aspect).CheckOK();
  }
  AspectCatalog scratch_catalog;
  for (const std::string& aspect : corpus.catalog().names()) {
    scratch_catalog.Intern(aspect);  // Preserve id assignment.
  }
  ReviewAnnotator annotator(&lexicon, &SentimentLexicon::Default(),
                            &scratch_catalog);

  size_t total_truth = 0;
  size_t recovered = 0;
  for (size_t p = 0; p < std::min<size_t>(corpus.num_products(), 30); ++p) {
    for (const Review& review : corpus.products()[p].reviews) {
      std::set<AspectId> truth;
      for (const OpinionMention& mention : review.opinions) {
        truth.insert(mention.aspect);
      }
      std::set<AspectId> found;
      for (const OpinionMention& mention : annotator.Annotate(review.text)) {
        found.insert(mention.aspect);
      }
      for (AspectId aspect : truth) {
        ++total_truth;
        if (found.count(aspect)) ++recovered;
      }
    }
  }
  ASSERT_GT(total_truth, 50u);
  // The coupling is strong by construction: expect high recall.
  EXPECT_GT(static_cast<double>(recovered) / total_truth, 0.9);
}

TEST_F(PipelineTest, StatisticsSaneOnPipelineCorpus) {
  DatasetStatistics stats = ComputeStatistics(workload_->corpus());
  EXPECT_EQ(stats.num_products, 100u);
  EXPECT_GT(stats.num_reviews, 200u);
  EXPECT_GT(stats.num_reviewers, 10u);
  EXPECT_GT(stats.num_target_products, 0u);
}

}  // namespace
}  // namespace comparesets
