#include "data/export.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/loader.h"
#include "data/synthetic.h"
#include "util/csv.h"
#include "util/jsonl.h"

namespace comparesets {
namespace {

Corpus SmallCorpus() {
  SyntheticConfig config = DefaultConfig("Clothing", 30).ValueOrDie();
  config.seed = 99;
  return GenerateCorpus(config).ValueOrDie();
}

TEST(ExportTest, ReviewsJsonlParsesAndCountsMatch) {
  Corpus corpus = SmallCorpus();
  std::string jsonl = ExportReviewsJsonl(corpus);
  auto rows = ParseJsonLines(jsonl);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), corpus.num_reviews());
  // Spot-check fields of the first row.
  const JsonValue& row = rows.value().front();
  EXPECT_FALSE(row.GetString("asin").empty());
  EXPECT_FALSE(row.GetString("reviewText").empty());
  EXPECT_GE(row.GetNumber("overall"), 1.0);
  EXPECT_LE(row.GetNumber("overall"), 5.0);
}

TEST(ExportTest, MetadataJsonlPreservesAlsoBought) {
  Corpus corpus = SmallCorpus();
  auto rows = ParseJsonLines(ExportMetadataJsonl(corpus));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), corpus.num_products());
  for (const JsonValue& row : rows.value()) {
    const Product* product = corpus.Find(row.GetString("asin"));
    ASSERT_NE(product, nullptr);
    const JsonValue* related = row.Find("related");
    ASSERT_NE(related, nullptr);
    const JsonValue* also_bought = related->Find("also_bought");
    ASSERT_NE(also_bought, nullptr);
    EXPECT_EQ(also_bought->as_array().size(), product->also_bought.size());
  }
}

TEST(ExportTest, RoundTripThroughLoader) {
  // Export a synthetic corpus and reload it via the real ingestion path.
  Corpus corpus = SmallCorpus();
  LoaderOptions options;
  options.mining.min_review_frequency = 2;
  auto reloaded = LoadAmazonCorpus("RoundTrip", ExportReviewsJsonl(corpus),
                                   ExportMetadataJsonl(corpus), options);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded.value().num_products(), corpus.num_products());
  EXPECT_EQ(reloaded.value().num_reviews(), corpus.num_reviews());
  // Also-bought links survive.
  const Product* original = &corpus.products()[0];
  const Product* loaded = reloaded.value().Find(original->id);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->also_bought, original->also_bought);
}

TEST(ExportTest, AnnotationSidecarRoundTripsGroundTruth) {
  Corpus corpus = SmallCorpus();
  std::string annotations = ExportAnnotationsJsonl(corpus);

  // Reload text via the loader (which re-annotates), then overwrite with
  // the ground-truth sidecar and compare against the original.
  LoaderOptions options;
  options.mining.min_review_frequency = 2;
  Corpus reloaded =
      LoadAmazonCorpus("RoundTrip", ExportReviewsJsonl(corpus),
                       ExportMetadataJsonl(corpus), options)
          .ValueOrDie();
  ASSERT_TRUE(AttachAnnotationsJsonl(annotations, &reloaded).ok());

  for (const Product& product : corpus.products()) {
    const Product* loaded = reloaded.Find(product.id);
    ASSERT_NE(loaded, nullptr);
    ASSERT_EQ(loaded->reviews.size(), product.reviews.size());
    for (size_t r = 0; r < product.reviews.size(); ++r) {
      const Review& original = product.reviews[r];
      const Review& copy = loaded->reviews[r];
      ASSERT_EQ(copy.opinions.size(), original.opinions.size())
          << original.id;
      for (size_t o = 0; o < original.opinions.size(); ++o) {
        // Aspect ids may differ (different intern order); names match.
        EXPECT_EQ(reloaded.catalog().Name(copy.opinions[o].aspect),
                  corpus.catalog().Name(original.opinions[o].aspect));
        EXPECT_EQ(copy.opinions[o].polarity, original.opinions[o].polarity);
        EXPECT_NEAR(copy.opinions[o].strength,
                    original.opinions[o].strength, 1e-9);
      }
    }
  }
}

TEST(ExportTest, AttachRejectsUnknownReviewIds) {
  Corpus corpus = SmallCorpus();
  Status status = AttachAnnotationsJsonl(
      R"({"review": "ghost", "opinions": []})", &corpus);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(ExportTest, AttachRejectsMalformedRows) {
  Corpus corpus = SmallCorpus();
  const std::string review_id = corpus.products()[0].reviews[0].id;
  EXPECT_FALSE(AttachAnnotationsJsonl(
                   "{\"review\": \"" + review_id + "\"}", &corpus)
                   .ok());
  EXPECT_FALSE(
      AttachAnnotationsJsonl("{\"review\": \"" + review_id +
                                 "\", \"opinions\": [{\"polarity\": "
                                 "\"positive\"}]}",
                             &corpus)
          .ok());
  EXPECT_FALSE(
      AttachAnnotationsJsonl("{\"review\": \"" + review_id +
                                 "\", \"opinions\": [{\"aspect\": \"x\", "
                                 "\"polarity\": \"meh\"}]}",
                             &corpus)
          .ok());
}

TEST(ExportTest, ExportCorpusFilesWritesThreeFiles) {
  Corpus corpus = SmallCorpus();
  std::string prefix = ::testing::TempDir() + "/comparesets_export_test";
  ASSERT_TRUE(ExportCorpusFiles(corpus, prefix).ok());
  for (const char* suffix :
       {".reviews.jsonl", ".metadata.jsonl", ".annotations.jsonl"}) {
    std::string path = prefix + suffix;
    auto content = ReadFileToString(path);
    ASSERT_TRUE(content.ok()) << path;
    EXPECT_FALSE(content.value().empty());
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace comparesets
