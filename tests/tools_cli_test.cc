// Integration tests for the comparesets CLI binary: each subcommand is
// executed as a child process and its output checked. The binary path
// is injected by CMake (COMPARESETS_CLI_PATH).

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace comparesets {
namespace {

#ifndef COMPARESETS_CLI_PATH
#error "COMPARESETS_CLI_PATH must be defined by the build"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunCli(const std::string& arguments) {
  std::string command =
      std::string(COMPARESETS_CLI_PATH) + " " + arguments + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t read_bytes;
  while ((read_bytes = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), read_bytes);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(CliTest, NoArgumentsPrintsUsageAndFails) {
  CommandResult result = RunCli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("Usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandPrintsUsageAndFails) {
  CommandResult result = RunCli("frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("Usage:"), std::string::npos);
}

TEST(CliTest, StatsPrintsTable2Rows) {
  CommandResult result = RunCli("stats --category Toy --products 40");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("Dataset: Toy"), std::string::npos);
  EXPECT_NE(result.output.find("#Product:"), std::string::npos);
  EXPECT_NE(result.output.find("Avg. #Comparison Product:"),
            std::string::npos);
}

TEST(CliTest, SelectPrintsSelections) {
  CommandResult result =
      RunCli("select --products 40 --m 2 --algorithm CompaReSetS");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("[target]"), std::string::npos);
  EXPECT_NE(result.output.find("[compare]"), std::string::npos);
  EXPECT_NE(result.output.find("Alignment:"), std::string::npos);
}

TEST(CliTest, NarrowReportsCoreList) {
  CommandResult result = RunCli("narrow --products 40 --k 3 --m 2");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("Core list: 3 of"), std::string::npos);
}

TEST(CliTest, BadFlagFails) {
  CommandResult result = RunCli("select --bogus 1");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown flag"), std::string::npos);
}

TEST(CliTest, ExportWritesFilesReadableBySelect) {
  std::string prefix = ::testing::TempDir() + "/comparesets_cli_export";
  CommandResult exported =
      RunCli("export --products 30 --prefix " + prefix);
  EXPECT_EQ(exported.exit_code, 0);

  CommandResult selected = RunCli("select --m 2 --reviews " + prefix +
                               ".reviews.jsonl --metadata " + prefix +
                               ".metadata.jsonl");
  EXPECT_EQ(selected.exit_code, 0);
  EXPECT_NE(selected.output.find("[target]"), std::string::npos);
  for (const char* suffix :
       {".reviews.jsonl", ".metadata.jsonl", ".annotations.jsonl"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(CliTest, ServeAnswersBatchFromQueriesFile) {
  // Synthetic ids are deterministic for a fixed seed, so the query file
  // can name them directly. Mixed selectors + a repeated target, so the
  // warm path (cache hit) is exercised end to end.
  std::string path = ::testing::TempDir() + "/comparesets_cli_queries.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("# comment line\n"
          "cellphone-P00000\n"
          "cellphone-P00000 CompaReSetS 2\n"
          "cellphone-P00001 Crs 2\n",
          f);
    fclose(f);
  }
  // --threads 1 keeps the batch serial: with a concurrent pool the two
  // P00000 queries could both miss the (not yet populated) vector cache,
  // making the cache=hit assertion racy.
  CommandResult result = RunCli(
      "serve --products 40 --metrics --cache_capacity 8 --threads 1 "
      "--queries " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("Answered 3 queries (0 failed)"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("cache=hit"), std::string::npos);
  // No deadline, no overload, no sampling knobs: every answer is
  // full-quality and says so.
  EXPECT_NE(result.output.find("tier=exact gap=0.0000"), std::string::npos);
  EXPECT_NE(result.output.find("counter engine.requests 3"),
            std::string::npos);
}

TEST(CliTest, ServeExportsPrometheusOverHttp) {
  std::string path = ::testing::TempDir() + "/comparesets_cli_promq.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("cellphone-P00000\n", f);
    fclose(f);
  }
  // Port 0 binds an ephemeral port (announced on stdout); after the
  // batch the CLI scrapes its own exporter over a real TCP socket and
  // prints the HTTP response, so this asserts the full network path.
  CommandResult result = RunCli(
      "serve --products 40 --threads 1 --metrics_port 0 --queries " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("METRICS LISTENING tcp:127.0.0.1:"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("HTTP/1.0 200 OK"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("engine_requests_total"), std::string::npos)
      << result.output;
}

TEST(CliTest, ServeDegradeAndTierFlags) {
  std::string path = ::testing::TempDir() + "/comparesets_cli_tierq.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("cellphone-P00000\n", f);
    fclose(f);
  }
  // --degrade loosens the floor, but an unloaded engine still answers
  // exactly — the floor widens what is acceptable, not what happens.
  CommandResult result = RunCli(
      "serve --products 40 --threads 1 --degrade --queries " + path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("tier=exact"), std::string::npos)
      << result.output;

  CommandResult bad = RunCli("serve --products 40 --min_tier bogus");
  std::remove(path.c_str());
  EXPECT_NE(bad.exit_code, 0);
}

TEST(CliTest, ServeShardedAnswersTheSameQueries) {
  std::string path = ::testing::TempDir() + "/comparesets_cli_shardq.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("cellphone-P00000\n"
          "cellphone-P00000 CompaReSetS 2\n"
          "cellphone-P00001 Crs 2\n",
          f);
    fclose(f);
  }
  CommandResult result = RunCli(
      "serve --products 40 --metrics --prometheus --threads 1 --shards 2 "
      "--queries " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 0) << result.output;
  // The shard map is printed before serving starts.
  EXPECT_NE(result.output.find("shard 0 [-inf,"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("shard 1 ["), std::string::npos);
  EXPECT_NE(result.output.find("Answered 3 queries (0 failed) across 2 "
                               "shards."),
            std::string::npos)
      << result.output;
  // Rollup keeps the single-engine dump format; Prometheus samples
  // carry per-shard labels.
  EXPECT_NE(result.output.find("counter engine.requests 3"),
            std::string::npos);
  EXPECT_NE(result.output.find("engine_requests_total{shard=\"0\"}"),
            std::string::npos)
      << result.output;

  CommandResult bad = RunCli("serve --products 40 --shards 0");
  EXPECT_EQ(bad.exit_code, 2);
}

TEST(CliTest, ServeWindowedBatchPrefetchesColdQueries) {
  std::string path = ::testing::TempDir() + "/comparesets_cli_windowq.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("cellphone-P00000\n"
          "cellphone-P00001 CompaReSetS 2\n"
          "cellphone-P00002 Crs 2\n",
          f);
    fclose(f);
  }
  // --window stages the batch in kernel windows whose design systems are
  // prefetched via one batched Gram build before the requests execute,
  // so even cold queries report a warm vector cache. Payloads are
  // bit-identical with the window on or off (the engine determinism
  // tests pin that); this exercises the CLI plumbing end to end.
  CommandResult result = RunCli(
      "serve --products 40 --threads 1 --window 4 --queries " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("Answered 3 queries (0 failed)"),
            std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("cache=miss"), std::string::npos)
      << result.output;
}

TEST(CliTest, ServeReportsUnknownTargetsWithoutPoisoningBatch) {
  std::string path = ::testing::TempDir() + "/comparesets_cli_badquery.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("cellphone-P00000\nno-such-product\n", f);
    fclose(f);
  }
  CommandResult result =
      RunCli("serve --products 40 --queries " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("ERROR"), std::string::npos);
  EXPECT_NE(result.output.find("Answered 2 queries (1 failed)"),
            std::string::npos)
      << result.output;
}

TEST(CliTest, ServeRejectsMalformedQueryLineCleanly) {
  std::string path = ::testing::TempDir() + "/comparesets_cli_malformed.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("cellphone-P00000 Crs abc\n", f);
    fclose(f);
  }
  CommandResult result = RunCli("serve --products 40 --queries " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bad m 'abc'"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("line 1"), std::string::npos);
}

TEST(CliTest, ServeRefusesIngestLogOverRpcAtStartup) {
  // The delta builder lives in the serving process: combining the two
  // flags must be a startup error (exit 2, kInvalidArgument), never a
  // silently stale serve. Fails before any shard server is spawned, so
  // no fleet is needed here.
  std::string wal = ::testing::TempDir() + "/comparesets_cli_ingest.wal";
  {
    FILE* f = fopen(wal.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fclose(f);
  }
  CommandResult result = RunCli(
      "serve --products 40 --transport rpc --ingest_log " + wal);
  std::remove(wal.c_str());
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("invalid argument"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("--ingest_log is not available over "
                               "--transport rpc"),
            std::string::npos)
      << result.output;
  // Refused up front: nothing was served.
  EXPECT_EQ(result.output.find("Answered"), std::string::npos)
      << result.output;
}

TEST(CliTest, ServeRejectsBadBatchPriority) {
  CommandResult result =
      RunCli("serve --products 40 --batch_priority urgent --queries "
             "/dev/null");
  EXPECT_NE(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("--batch_priority"), std::string::npos)
      << result.output;
}

TEST(CliTest, ServeSloFlagPrintsControllerSummary) {
  std::string path = ::testing::TempDir() + "/comparesets_cli_slo.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("cellphone-P00000\ncellphone-P00001\n", f);
    fclose(f);
  }
  CommandResult result = RunCli(
      "serve --products 40 --threads 1 --max_in_flight 1 --slo_ms 5000 "
      "--queries " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("Answered 2 queries (0 failed)"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("SLO p99="), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("target=5000.00ms"), std::string::npos)
      << result.output;
}

TEST(CliTest, HelpListsFlags) {
  CommandResult result = RunCli("select --help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("--algorithm"), std::string::npos);
  EXPECT_NE(result.output.find("--lambda"), std::string::npos);
}

}  // namespace
}  // namespace comparesets
