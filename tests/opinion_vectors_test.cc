#include "opinion/vectors.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace comparesets {
namespace {

class InstanceVectorsTest : public ::testing::Test {
 protected:
  InstanceVectorsTest()
      : corpus_(testing::WorkingExampleCorpus()),
        instance_(testing::WorkingExampleInstance(corpus_)),
        vectors_(BuildInstanceVectors(OpinionModel::Binary(5), instance_)) {}

  Corpus corpus_;
  ProblemInstance instance_;
  InstanceVectors vectors_;
};

TEST_F(InstanceVectorsTest, ShapesMatchInstance) {
  EXPECT_EQ(vectors_.num_items(), 3u);
  EXPECT_EQ(vectors_.tau.size(), 3u);
  EXPECT_EQ(vectors_.gamma.size(), 5u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(vectors_.num_reviews(i), instance_.items[i]->reviews.size());
    EXPECT_EQ(vectors_.opinion_columns[i].size(), vectors_.num_reviews(i));
    EXPECT_EQ(vectors_.aspect_columns[i].size(), vectors_.num_reviews(i));
    EXPECT_EQ(vectors_.tau[i].size(), 10u);  // 2z.
  }
}

TEST_F(InstanceVectorsTest, TauMatchesFullSetOpinionVector) {
  OpinionModel model = OpinionModel::Binary(5);
  for (size_t i = 0; i < 3; ++i) {
    Vector direct = model.OpinionVector(AllReviews(*instance_.items[i]));
    EXPECT_TRUE(vectors_.tau[i].AlmostEquals(direct)) << "item " << i;
  }
}

TEST_F(InstanceVectorsTest, GammaIsTargetAspectDistribution) {
  OpinionModel model = OpinionModel::Binary(5);
  Vector direct = model.AspectVector(AllReviews(*instance_.items[0]));
  EXPECT_TRUE(vectors_.gamma.AlmostEquals(direct));
}

TEST_F(InstanceVectorsTest, ColumnsMatchModelColumns) {
  OpinionModel model = OpinionModel::Binary(5);
  for (size_t i = 0; i < 3; ++i) {
    const Product& product = *instance_.items[i];
    for (size_t r = 0; r < product.reviews.size(); ++r) {
      EXPECT_TRUE(vectors_.opinion_columns[i][r].AlmostEquals(
          model.ReviewOpinionColumn(product.reviews[r])));
      EXPECT_TRUE(vectors_.aspect_columns[i][r].AlmostEquals(
          model.ReviewAspectColumn(product.reviews[r])));
    }
  }
}

TEST_F(InstanceVectorsTest, OpinionOfMatchesDirectEvaluation) {
  OpinionModel model = OpinionModel::Binary(5);
  Selection selection = {0, 2};
  Vector via_context = vectors_.OpinionOf(1, selection);
  Vector direct =
      model.OpinionVector(SelectReviews(*instance_.items[1], selection));
  EXPECT_TRUE(via_context.AlmostEquals(direct));
}

TEST_F(InstanceVectorsTest, AspectOfMatchesDirectEvaluation) {
  OpinionModel model = OpinionModel::Binary(5);
  Selection selection = {1, 3, 4};
  Vector via_context = vectors_.AspectOf(2, selection);
  Vector direct =
      model.AspectVector(SelectReviews(*instance_.items[2], selection));
  EXPECT_TRUE(via_context.AlmostEquals(direct));
}

TEST_F(InstanceVectorsTest, EmptySelectionGivesZeroVectors) {
  EXPECT_DOUBLE_EQ(vectors_.OpinionOf(0, {}).NormL1(), 0.0);
  EXPECT_DOUBLE_EQ(vectors_.AspectOf(0, {}).NormL1(), 0.0);
}

TEST_F(InstanceVectorsTest, ThreePolarityContextHasWiderTau) {
  InstanceVectors three =
      BuildInstanceVectors(OpinionModel::ThreePolarity(5), instance_);
  EXPECT_EQ(three.tau[0].size(), 15u);
  EXPECT_EQ(three.gamma.size(), 5u);  // φ independent of opinion dims.
  EXPECT_TRUE(three.gamma.AlmostEquals(vectors_.gamma));
}

TEST_F(InstanceVectorsTest, UnaryScaleTauWithinUnitInterval) {
  InstanceVectors unary =
      BuildInstanceVectors(OpinionModel::UnaryScale(5), instance_);
  EXPECT_EQ(unary.tau[0].size(), 5u);
  for (size_t d = 0; d < 5; ++d) {
    EXPECT_GE(unary.tau[0][d], 0.0);
    EXPECT_LE(unary.tau[0][d], 1.0);
  }
}

}  // namespace
}  // namespace comparesets
