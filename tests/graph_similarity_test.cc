#include "graph/similarity_graph.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace comparesets {
namespace {

TEST(SimilarityGraphTest, SymmetricWeightStorage) {
  SimilarityGraph graph(3);
  graph.set_weight(0, 2, 4.5);
  EXPECT_DOUBLE_EQ(graph.weight(0, 2), 4.5);
  EXPECT_DOUBLE_EQ(graph.weight(2, 0), 4.5);
  EXPECT_DOUBLE_EQ(graph.weight(0, 1), 0.0);
}

TEST(SimilarityGraphTest, SubsetWeightSumsPairs) {
  SimilarityGraph graph(4);
  graph.set_weight(0, 1, 1.0);
  graph.set_weight(0, 2, 2.0);
  graph.set_weight(1, 2, 4.0);
  graph.set_weight(2, 3, 8.0);
  EXPECT_DOUBLE_EQ(graph.SubsetWeight({0, 1, 2}), 7.0);
  EXPECT_DOUBLE_EQ(graph.SubsetWeight({0, 3}), 0.0);
  EXPECT_DOUBLE_EQ(graph.SubsetWeight({2}), 0.0);
  EXPECT_DOUBLE_EQ(graph.SubsetWeight({}), 0.0);
}

TEST(SimilarityGraphTest, WeightToSubset) {
  SimilarityGraph graph(4);
  graph.set_weight(3, 0, 1.0);
  graph.set_weight(3, 1, 2.0);
  EXPECT_DOUBLE_EQ(graph.WeightToSubset(3, {0, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(graph.WeightToSubset(3, {3, 0}), 1.0);  // Self skipped.
}

class BuildGraphTest : public ::testing::Test {
 protected:
  BuildGraphTest()
      : corpus_(testing::WorkingExampleCorpus()),
        instance_(testing::WorkingExampleInstance(corpus_)),
        vectors_(BuildInstanceVectors(OpinionModel::Binary(5), instance_)) {
    selections_ = {{0, 1, 2}, {0, 1}, {0, 1, 2}};
  }

  Corpus corpus_;
  ProblemInstance instance_;
  InstanceVectors vectors_;
  std::vector<Selection> selections_;
};

TEST_F(BuildGraphTest, WeightsNonNegativeWithZeroAtMaxDistancePair) {
  SimilarityGraph graph =
      BuildSimilarityGraph(vectors_, selections_, 1.0, 0.1);
  double min_weight = 1e18;
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = i + 1; j < 3; ++j) {
      EXPECT_GE(graph.weight(i, j), 0.0);
      min_weight = std::min(min_weight, graph.weight(i, j));
    }
  }
  // w_ij = max d − d_ij: the farthest pair gets exactly 0.
  EXPECT_NEAR(min_weight, 0.0, 1e-12);
}

TEST_F(BuildGraphTest, WeightsMatchDistanceDefinition) {
  double lambda = 1.0;
  double mu = 0.1;
  SimilarityGraph graph =
      BuildSimilarityGraph(vectors_, selections_, lambda, mu);
  // Recompute d_ij from the public API and check the shift.
  double max_d = 0.0;
  double d[3][3] = {};
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = i + 1; j < 3; ++j) {
      d[i][j] = ItemPairDistance(vectors_, selections_, i, j, lambda, mu);
      max_d = std::max(max_d, d[i][j]);
    }
  }
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = i + 1; j < 3; ++j) {
      EXPECT_NEAR(graph.weight(i, j), max_d - d[i][j], 1e-12)
          << i << "," << j;
    }
  }
}

TEST_F(BuildGraphTest, SimilarSelectionsGetHigherWeight) {
  // Items 0 and 2 share identical aspect profiles in their selections
  // compared with the sparser item 1 selection, so (0,2) should be the
  // closest pair (largest weight) when μ dominates.
  std::vector<Selection> selections = {{0, 1, 2}, {3}, {0, 1, 2}};
  SimilarityGraph graph = BuildSimilarityGraph(vectors_, selections, 0.0, 10.0);
  EXPECT_GT(graph.weight(0, 2), graph.weight(0, 1));
  EXPECT_GT(graph.weight(0, 2), graph.weight(1, 2));
}

TEST(BuildGraphDegenerateTest, SingleItemGraphIsTrivial) {
  Corpus corpus = testing::WorkingExampleCorpus();
  ProblemInstance solo;
  solo.items = {corpus.Find("p1")};
  InstanceVectors vectors =
      BuildInstanceVectors(OpinionModel::Binary(5), solo);
  SimilarityGraph graph = BuildSimilarityGraph(vectors, {{0}}, 1.0, 0.1);
  EXPECT_EQ(graph.num_vertices(), 1u);
}

}  // namespace
}  // namespace comparesets
