#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace comparesets {
namespace {

TEST(CsvParseTest, SimpleRows) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows.value()[1], (CsvRow{"1", "2", "3"}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto rows = ParseCsv("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1], (CsvRow{"c", "d"}));
}

TEST(CsvParseTest, QuotedFieldsWithSeparatorsAndQuotes) {
  auto rows = ParseCsv("\"a,b\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0], (CsvRow{"a,b", "say \"hi\""}));
}

TEST(CsvParseTest, EmbeddedNewlineInsideQuotes) {
  auto rows = ParseCsv("\"line1\nline2\",x\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrLfRowTermination) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
}

TEST(CsvParseTest, EmptyFields) {
  auto rows = ParseCsv(",,\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0], (CsvRow{"", "", ""}));
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  auto rows = ParseCsv("\"abc\n");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kParseError);
}

TEST(CsvParseTest, TabSeparator) {
  auto rows = ParseCsv("a\tb\nc\td\n", '\t');
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0], (CsvRow{"a", "b"}));
}

TEST(CsvWriteTest, RoundTripsThroughParse) {
  std::vector<CsvRow> rows = {
      {"plain", "with,comma", "with \"quote\""},
      {"new\nline", "", "last"},
  };
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), rows);
}

TEST(CsvFileTest, WriteThenReadFile) {
  std::string path = ::testing::TempDir() + "/comparesets_csv_test.csv";
  std::vector<CsvRow> rows = {{"h1", "h2"}, {"1", "x,y"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto read = ReadCsvFile("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(FileStringTest, RoundTrip) {
  std::string path = ::testing::TempDir() + "/comparesets_blob_test.bin";
  std::string content = "binary\0data\nwith lines";
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace comparesets
