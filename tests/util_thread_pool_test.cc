#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace comparesets {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "body called for n=0"; });

  std::atomic<size_t> calls{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1u);
}

TEST(ThreadPoolTest, ParallelForWithMoreIndicesThanThreads) {
  ThreadPool pool(1);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, SequentialParallelForCallsReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<size_t> calls{0};
    pool.ParallelFor(37, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 37u);
  }
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::condition_variable done;
  bool ran = false;
  pool.Submit([&] {
    std::lock_guard<std::mutex> lock(mutex);
    ran = true;
    done.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  EXPECT_TRUE(done.wait_for(lock, std::chrono::seconds(10),
                            [&] { return ran; }));
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, ResolveThreadsClampsAndDefaults) {
  EXPECT_EQ(ThreadPool::ResolveThreads(8, 3), 3u);
  EXPECT_EQ(ThreadPool::ResolveThreads(2, 5), 2u);
  EXPECT_GE(ThreadPool::ResolveThreads(0, 16), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(4, 0), 4u);  // 0 = no cap.
}

TEST(ThreadPoolTest, NumThreadsMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.num_threads(), 1u);
}

// A one-worker pool makes scheduling order observable: block the single
// worker, queue batch work, then one interactive task — the interactive
// task must run before every already-queued batch task (the scheduler
// drains the interactive class first; batch never gets ahead of it).
TEST(SchedulerTest, InteractiveNeverQueuesBehindBatch) {
  // All synchronization state is declared before the pool so that
  // ~ThreadPool (which drains and joins every worker) runs before any
  // of it is destroyed — a worker mid-notify must never touch a dead
  // condition variable.
  std::mutex mutex;
  std::condition_variable cv;
  bool gate_open = false;
  bool worker_blocked = false;
  std::vector<int> order;  // 0 = batch, 1 = interactive
  std::mutex order_mutex;
  std::condition_variable order_cv;
  ThreadPool pool(1);

  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    worker_blocked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return gate_open; });
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return worker_blocked; }));
  }

  for (int i = 0; i < 10; ++i) {
    pool.Submit(
        [&] {
          std::lock_guard<std::mutex> lock(order_mutex);
          order.push_back(0);
          order_cv.notify_all();
        },
        RequestPriority::kBatch);
  }
  pool.Submit(
      [&] {
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(1);
        order_cv.notify_all();
      },
      RequestPriority::kInteractive);

  {
    std::lock_guard<std::mutex> lock(mutex);
    gate_open = true;
  }
  cv.notify_all();
  std::unique_lock<std::mutex> order_lock(order_mutex);
  ASSERT_TRUE(order_cv.wait_for(order_lock, std::chrono::seconds(30),
                                [&] { return order.size() == 11u; }));
  EXPECT_EQ(order.front(), 1) << "a batch task ran before the queued "
                                 "interactive task (priority inversion)";
}

// Forces at least one steal: with two workers, one blocked inside a
// task, external submits round-robin across both deques — the free
// worker can only finish the whole backlog by stealing from the blocked
// worker's deque.
TEST(SchedulerTest, BlockedWorkerBacklogIsStolen) {
  // Sync state before the pool: ~ThreadPool joins workers before the
  // condition variable is destroyed (see the previous test).
  std::mutex mutex;
  std::condition_variable cv;
  bool gate_open = false;
  bool worker_blocked = false;
  std::atomic<int> done{0};
  ThreadPool pool(2);

  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    worker_blocked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return gate_open; });
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return worker_blocked; }));
  }

  constexpr int kTasks = 10;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mutex);
      done.fetch_add(1);
      cv.notify_all();
    });
  }
  // Every task must finish while one of the two workers is still held:
  // round-robin parks half the backlog on the blocked worker's deque,
  // so the free worker has to steal to get there.
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done.load() == kTasks; }));
    gate_open = true;
  }
  cv.notify_all();
  EXPECT_GE(pool.steals(), 1u);
}

// The execution-model nesting rule: tasks running ON the pool may call
// ParallelFor on the same pool without deadlock (the submitting worker
// drains the loop itself; queued helpers land on its own deque and are
// stealable by idle peers).
TEST(SchedulerTest, NestedParallelForFromWorkerTasks) {
  constexpr int kOuter = 8;
  constexpr size_t kInner = 200;
  std::atomic<size_t> total{0};
  std::atomic<int> outer_done{0};
  std::mutex mutex;
  std::condition_variable cv;
  ThreadPool pool(4);  // Last: joined before the sync state dies.
  for (int t = 0; t < kOuter; ++t) {
    pool.Submit([&] {
      pool.ParallelFor(kInner, [&](size_t i) { total.fetch_add(i + 1); });
      std::lock_guard<std::mutex> lock(mutex);
      outer_done.fetch_add(1);
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                          [&] { return outer_done.load() == kOuter; }));
  EXPECT_EQ(total.load(), kOuter * (kInner * (kInner + 1)) / 2);
}

// Tasks submitted BY running tasks during destructor drain still run:
// stopping_ only ends a worker once the pending count truly hits zero,
// and chained submissions keep it above zero until the chain bottoms
// out.
TEST(SchedulerTest, SubmitDuringDrainRunsChainedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) {
      pool.Submit([&ran, &pool] {
        ran.fetch_add(1);
        pool.Submit([&ran, &pool] {
          ran.fetch_add(1);
          pool.Submit([&ran] { ran.fetch_add(1); }, RequestPriority::kBatch);
        });
      });
    }
  }
  EXPECT_EQ(ran.load(), 12);
}

// Mixed-class storm: both classes complete, none lost, under heavy
// concurrent submission from several external threads.
TEST(SchedulerTest, MixedPriorityStormCompletesEverything) {
  constexpr int kPerThread = 200;
  constexpr int kThreads = 4;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&pool, &ran, t] {
        for (int i = 0; i < kPerThread; ++i) {
          pool.Submit([&ran] { ran.fetch_add(1); },
                      (i + t) % 2 == 0 ? RequestPriority::kInteractive
                                       : RequestPriority::kBatch);
        }
      });
    }
    for (std::thread& s : submitters) s.join();
  }
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
}

TEST(SchedulerTest, PriorityNamesAndParsing) {
  EXPECT_STREQ(RequestPriorityName(RequestPriority::kInteractive),
               "interactive");
  EXPECT_STREQ(RequestPriorityName(RequestPriority::kBatch), "batch");
  RequestPriority parsed = RequestPriority::kInteractive;
  EXPECT_TRUE(ParseRequestPriority("batch", &parsed));
  EXPECT_EQ(parsed, RequestPriority::kBatch);
  EXPECT_TRUE(ParseRequestPriority("interactive", &parsed));
  EXPECT_EQ(parsed, RequestPriority::kInteractive);
  EXPECT_FALSE(ParseRequestPriority("urgent", &parsed));
  EXPECT_EQ(DemotePriority(RequestPriority::kInteractive,
                           RequestPriority::kBatch),
            RequestPriority::kBatch);
  EXPECT_EQ(DemotePriority(RequestPriority::kInteractive,
                           RequestPriority::kInteractive),
            RequestPriority::kInteractive);
}

}  // namespace
}  // namespace comparesets
