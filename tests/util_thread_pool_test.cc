#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace comparesets {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "body called for n=0"; });

  std::atomic<size_t> calls{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1u);
}

TEST(ThreadPoolTest, ParallelForWithMoreIndicesThanThreads) {
  ThreadPool pool(1);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, SequentialParallelForCallsReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<size_t> calls{0};
    pool.ParallelFor(37, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 37u);
  }
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::condition_variable done;
  bool ran = false;
  pool.Submit([&] {
    std::lock_guard<std::mutex> lock(mutex);
    ran = true;
    done.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  EXPECT_TRUE(done.wait_for(lock, std::chrono::seconds(10),
                            [&] { return ran; }));
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, ResolveThreadsClampsAndDefaults) {
  EXPECT_EQ(ThreadPool::ResolveThreads(8, 3), 3u);
  EXPECT_EQ(ThreadPool::ResolveThreads(2, 5), 2u);
  EXPECT_GE(ThreadPool::ResolveThreads(0, 16), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(4, 0), 4u);  // 0 = no cap.
}

TEST(ThreadPoolTest, NumThreadsMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.num_threads(), 1u);
}

}  // namespace
}  // namespace comparesets
