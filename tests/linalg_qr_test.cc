#include "linalg/qr.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace comparesets {
namespace {

Matrix FromRows(const std::vector<std::vector<double>>& rows) {
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

TEST(QrTest, SolvesSquareSystemExactly) {
  Matrix a = FromRows({{2.0, 1.0}, {1.0, 3.0}});
  Vector b = {5.0, 10.0};
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  // Exact solution: x = (1, 3).
  EXPECT_NEAR(x.value()[0], 1.0, 1e-10);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-10);
}

TEST(QrTest, OverdeterminedLeastSquares) {
  // Fit y = 2x + 1 through noisy-free points: exact recovery.
  Matrix a = FromRows({{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}});
  Vector b = {1.0, 3.0, 5.0, 7.0};
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-10);
  EXPECT_NEAR(x.value()[1], 1.0, 1e-10);
}

TEST(QrTest, ResidualIsOrthogonalToColumns) {
  // Least-squares optimality: A^T (b − Ax) = 0.
  Rng rng(5);
  Matrix a(8, 3);
  Vector b(8);
  for (size_t r = 0; r < 8; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = rng.Normal();
    b[r] = rng.Normal();
  }
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  Vector residual = b - a.Multiply(x.value());
  Vector gram = a.MultiplyTranspose(residual);
  for (size_t c = 0; c < 3; ++c) EXPECT_NEAR(gram[c], 0.0, 1e-9);
}

TEST(QrTest, RankDeficientColumnsYieldFiniteSolution) {
  // Second column is a multiple of the first; solver must not blow up
  // and the fit must still be optimal.
  Matrix a = FromRows({{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}});
  Vector b = {1.0, 2.0, 3.0};
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  Vector fitted = a.Multiply(x.value());
  EXPECT_NEAR(SquaredDistance(fitted, b), 0.0, 1e-18);
}

TEST(QrTest, ZeroColumnHandled) {
  Matrix a = FromRows({{0.0, 1.0}, {0.0, 2.0}, {0.0, 1.0}});
  Vector b = {2.0, 4.0, 2.0};
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[1], 2.0, 1e-10);
  EXPECT_NEAR(x.value()[0], 0.0, 1e-10);  // Free variable pinned to zero.
}

TEST(QrTest, SingleColumn) {
  Matrix a = FromRows({{1.0}, {2.0}, {2.0}});
  Vector b = {1.0, 2.0, 2.0};
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
}

TEST(QrTest, WideMatrixRejected) {
  Matrix a(2, 3);
  auto qr = QrDecomposition::Compute(a);
  EXPECT_FALSE(qr.ok());
  EXPECT_EQ(qr.status().code(), StatusCode::kInvalidArgument);
}

TEST(QrTest, EmptyMatrixRejected) {
  EXPECT_FALSE(QrDecomposition::Compute(Matrix(3, 0)).ok());
}

TEST(QrTest, RhsSizeMismatchRejected) {
  Matrix a = FromRows({{1.0}, {2.0}});
  auto qr = QrDecomposition::Compute(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_FALSE(qr.value().Solve(Vector{1.0, 2.0, 3.0}).ok());
}

TEST(QrTest, ReusableFactorizationForMultipleRhs) {
  Matrix a = FromRows({{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}});
  auto qr = QrDecomposition::Compute(a);
  ASSERT_TRUE(qr.ok());
  auto x1 = qr.value().Solve(Vector{1.0, 0.0, 1.0});
  auto x2 = qr.value().Solve(Vector{0.0, 1.0, 1.0});
  ASSERT_TRUE(x1.ok());
  ASSERT_TRUE(x2.ok());
  EXPECT_NEAR(x1.value()[0], 1.0, 1e-10);
  EXPECT_NEAR(x2.value()[1], 1.0, 1e-10);
}

TEST(QrTest, RandomSystemsRecoverPlantedSolution) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    size_t rows = 5 + trial % 6;
    size_t cols = 2 + trial % 3;
    Matrix a(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) a(r, c) = rng.Normal();
    }
    Vector planted(cols);
    for (size_t c = 0; c < cols; ++c) planted[c] = rng.Normal();
    Vector b = a.Multiply(planted);
    auto x = LeastSquares(a, b);
    ASSERT_TRUE(x.ok());
    EXPECT_TRUE(x.value().AlmostEquals(planted, 1e-8))
        << "trial " << trial << ": got " << x.value().ToString() << " want "
        << planted.ToString();
  }
}

}  // namespace
}  // namespace comparesets
