// Shared corpus fixtures for the test suite, including a faithful
// reconstruction of the paper's Working Example (Figure 2).

#pragma once

#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/review.h"
#include "opinion/opinion_model.h"
#include "opinion/vectors.h"

namespace comparesets {
namespace testing {

// Aspect ids of the working-example catalog, in the paper's order.
inline constexpr AspectId kBattery = 0;
inline constexpr AspectId kLens = 1;
inline constexpr AspectId kQuality = 2;
inline constexpr AspectId kPrice = 3;
inline constexpr AspectId kShuttle = 4;

/// Builds a review with the given (aspect, polarity) mentions.
inline Review MakeReview(
    std::string id,
    const std::vector<std::pair<AspectId, Polarity>>& mentions,
    std::string text = "") {
  Review review;
  review.id = std::move(id);
  review.text = std::move(text);
  for (const auto& [aspect, polarity] : mentions) {
    review.opinions.push_back({aspect, polarity, 1.0});
  }
  return review;
}

constexpr Polarity kPos = Polarity::kPositive;
constexpr Polarity kNeg = Polarity::kNegative;

/// Target item p1 of Working Example 1, rebuilt so the paper's exact
/// vectors hold:
///   τ1 = (2/6, 4/6, 2/6, 2/6, 2/6, 2/6, 0, 0, 0, 0)
///   Γ  = (6/6, 4/6, 4/6, 0, 0)
/// Six reviews in two annotation-identical triples; selecting either
/// triple reproduces τ1 and Γ exactly (zero Eq. 3 cost), mirroring the
/// paper's S1 = {r5, r6, r7}.
inline Product WorkingExampleTarget() {
  Product p;
  p.id = "p1";
  p.title = "working example target";
  p.reviews.push_back(MakeReview(
      "r1", {{kBattery, kPos}, {kLens, kPos}, {kQuality, kPos}},
      "the battery is great and the lens and quality are excellent"));
  p.reviews.push_back(MakeReview(
      "r2", {{kBattery, kNeg}, {kLens, kNeg}, {kQuality, kNeg}},
      "the battery is poor and the lens and quality are terrible"));
  p.reviews.push_back(
      MakeReview("r3", {{kBattery, kNeg}}, "the battery is disappointing"));
  p.reviews.push_back(MakeReview(
      "r4", {{kBattery, kPos}, {kLens, kPos}, {kQuality, kPos}},
      "battery lens and quality all work perfectly"));
  p.reviews.push_back(MakeReview(
      "r5", {{kBattery, kNeg}, {kLens, kNeg}, {kQuality, kNeg}},
      "battery lens and quality are all bad"));
  p.reviews.push_back(
      MakeReview("r6", {{kBattery, kNeg}}, "the battery broke quickly"));
  return p;
}

/// Comparative item with reviews over {quality, price} plus one review
/// covering battery/lens so CompaReSetS has aspect-aligned choices.
inline Product WorkingExampleComparative(const std::string& id) {
  Product p;
  p.id = id;
  p.title = "working example comparative " + id;
  p.reviews.push_back(MakeReview(
      id + "-r1", {{kQuality, kPos}, {kPrice, kPos}},
      "the quality is great and the price is excellent"));
  p.reviews.push_back(MakeReview(
      id + "-r2", {{kQuality, kNeg}, {kPrice, kNeg}},
      "the quality is poor and the price is terrible"));
  p.reviews.push_back(MakeReview(
      id + "-r3", {{kBattery, kPos}, {kLens, kPos}},
      "the battery is great and the lens is perfect"));
  p.reviews.push_back(MakeReview(
      id + "-r4", {{kPrice, kNeg}}, "the price is disappointing"));
  p.reviews.push_back(MakeReview(
      id + "-r5", {{kBattery, kNeg}, {kQuality, kPos}},
      "the battery is bad but the quality is great"));
  return p;
}

/// Full working-example corpus: target + two comparatives, catalog in
/// the paper's aspect order.
inline Corpus WorkingExampleCorpus() {
  Corpus corpus("WorkingExample");
  corpus.catalog().Intern("battery");
  corpus.catalog().Intern("lens");
  corpus.catalog().Intern("quality");
  corpus.catalog().Intern("price");
  corpus.catalog().Intern("shuttle");
  Product target = WorkingExampleTarget();
  target.also_bought = {"p2", "p3"};
  corpus.AddProduct(std::move(target)).CheckOK();
  corpus.AddProduct(WorkingExampleComparative("p2")).CheckOK();
  corpus.AddProduct(WorkingExampleComparative("p3")).CheckOK();
  corpus.Finalize();
  return corpus;
}

/// Instance over the working-example corpus (p1 target, p2/p3 compare).
inline ProblemInstance WorkingExampleInstance(const Corpus& corpus) {
  ProblemInstance instance;
  instance.items = {corpus.Find("p1"), corpus.Find("p2"), corpus.Find("p3")};
  return instance;
}

}  // namespace testing
}  // namespace comparesets
