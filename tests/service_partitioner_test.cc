#include "service/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "data/synthetic.h"

namespace comparesets {
namespace {

std::shared_ptr<const IndexedCorpus> MakeCorpus(size_t products,
                                                uint64_t seed = 42) {
  auto config = DefaultConfig("Cellphone", products);
  config.status().CheckOK();
  config.value().seed = seed;
  auto corpus = GenerateCorpus(config.value());
  corpus.status().CheckOK();
  return IndexedCorpus::Build(std::move(corpus).value()).ValueOrDie();
}

TEST(ComputeBoundsTest, ProducesSortedBoundsStartingAtKeySpaceOrigin) {
  auto full = MakeCorpus(60);
  for (size_t n : {1u, 2u, 4u, 7u}) {
    auto bounds = CorpusPartitioner::ComputeBounds(*full, n);
    ASSERT_TRUE(bounds.ok()) << bounds.status();
    ASSERT_EQ(bounds.value().size(), n);
    EXPECT_EQ(bounds.value()[0], "");
    for (size_t s = 1; s < n; ++s) {
      EXPECT_LT(bounds.value()[s - 1], bounds.value()[s]);
    }
  }
}

TEST(ComputeBoundsTest, RejectsZeroAndOversizedShardCounts) {
  auto full = MakeCorpus(60);
  EXPECT_EQ(CorpusPartitioner::ComputeBounds(*full, 0).status().code(),
            StatusCode::kInvalidArgument);
  auto too_many = CorpusPartitioner::ComputeBounds(
      *full, full->num_instances() + 1);
  EXPECT_EQ(too_many.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionTest, SingleShardReturnsTheOriginalSnapshot) {
  auto full = MakeCorpus(60);
  auto shards = CorpusPartitioner::Partition(full, 1);
  ASSERT_TRUE(shards.ok()) << shards.status();
  ASSERT_EQ(shards.value().size(), 1u);
  // No copy at all: the unsharded snapshot IS the one-shard partition.
  EXPECT_EQ(shards.value()[0].get(), full.get());
}

TEST(PartitionTest, ShardsCoverEveryInstanceExactlyOnce) {
  auto full = MakeCorpus(80);
  for (size_t n : {2u, 4u}) {
    auto shards = CorpusPartitioner::Partition(full, n);
    ASSERT_TRUE(shards.ok()) << shards.status();
    ASSERT_EQ(shards.value().size(), n);

    std::set<std::string> seen;
    size_t total = 0;
    for (size_t s = 0; s < n; ++s) {
      const IndexedCorpus& shard = *shards.value()[s];
      EXPECT_EQ(shard.shard().shard_id, s);
      EXPECT_EQ(shard.shard().num_shards, n);
      total += shard.num_instances();
      for (const ProblemInstance& instance : shard.instances()) {
        const std::string& target = instance.target().id;
        EXPECT_TRUE(shard.shard().range.Contains(target))
            << target << " outside " << shard.shard().range.ToString();
        EXPECT_TRUE(seen.insert(target).second)
            << target << " owned by two shards";
      }
    }
    EXPECT_EQ(total, full->num_instances());
    for (const ProblemInstance& instance : full->instances()) {
      EXPECT_EQ(seen.count(instance.target().id), 1u);
    }
  }
}

// The bit-identity invariant: every shard instance carries the exact
// item-id sequence (and underlying review text) of the full corpus's
// enumeration — the partitioner re-points ids, it never re-filters.
TEST(PartitionTest, ShardInstancesMatchTheGlobalEnumeration) {
  auto full = MakeCorpus(80);
  auto shards = CorpusPartitioner::Partition(full, 3);
  ASSERT_TRUE(shards.ok()) << shards.status();

  for (const auto& shard : shards.value()) {
    for (const ProblemInstance& instance : shard->instances()) {
      const ProblemInstance* original =
          full->FindInstance(instance.target().id);
      ASSERT_NE(original, nullptr);
      ASSERT_EQ(instance.num_items(), original->num_items());
      for (size_t i = 0; i < instance.num_items(); ++i) {
        EXPECT_EQ(instance.items[i]->id, original->items[i]->id);
        EXPECT_EQ(instance.items[i]->reviews.size(),
                  original->items[i]->reviews.size());
        // Shard products are copies; every comparative in the closure
        // must resolve through the shard's own storage.
        EXPECT_EQ(shard->FindProduct(instance.items[i]->id),
                  instance.items[i]);
      }
    }
  }
}

TEST(PartitionTest, ShardRangesTileTheKeySpace) {
  auto full = MakeCorpus(60);
  auto bounds = CorpusPartitioner::ComputeBounds(*full, 4);
  ASSERT_TRUE(bounds.ok());
  auto shards = CorpusPartitioner::Partition(full, 4);
  ASSERT_TRUE(shards.ok());
  for (size_t s = 0; s < 4; ++s) {
    const ShardKeyRange& range = shards.value()[s]->shard().range;
    EXPECT_EQ(range.begin, bounds.value()[s]);
    EXPECT_EQ(range.end, s + 1 < 4 ? bounds.value()[s + 1] : "");
  }
  EXPECT_EQ(shards.value()[0]->shard().range.ToString().substr(0, 6),
            "[-inf,");
}

TEST(ExtractShardTest, RejectsMalformedBounds) {
  auto full = MakeCorpus(60);
  auto no_origin = CorpusPartitioner::ExtractShard(*full, {"p1", "p2"}, 0);
  EXPECT_EQ(no_origin.status().code(), StatusCode::kInvalidArgument);
  auto empty = CorpusPartitioner::ExtractShard(*full, {}, 0);
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace comparesets
