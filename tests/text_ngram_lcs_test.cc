#include <gtest/gtest.h>

#include "text/lcs.h"
#include "text/ngram.h"

namespace comparesets {
namespace {

std::vector<std::string> Words(std::initializer_list<const char*> words) {
  return std::vector<std::string>(words.begin(), words.end());
}

TEST(NgramTest, UnigramCounts) {
  NgramCounts counts = CountNgrams(Words({"a", "b", "a"}), 1);
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at("a"), 2);
  EXPECT_EQ(counts.at("b"), 1);
}

TEST(NgramTest, BigramCounts) {
  NgramCounts counts = CountNgrams(Words({"a", "b", "a", "b"}), 2);
  EXPECT_EQ(TotalCount(counts), 3);
  EXPECT_EQ(counts.at(std::string("a") + '\x1f' + "b"), 2);
  EXPECT_EQ(counts.at(std::string("b") + '\x1f' + "a"), 1);
}

TEST(NgramTest, OrderLargerThanSequenceIsEmpty) {
  EXPECT_TRUE(CountNgrams(Words({"a", "b"}), 3).empty());
  EXPECT_TRUE(CountNgrams({}, 1).empty());
  EXPECT_TRUE(CountNgrams(Words({"a"}), 0).empty());
}

TEST(NgramTest, SeparatorPreventsCollisions) {
  // Tokens "ab"+"c" must not collide with "a"+"bc".
  NgramCounts left = CountNgrams(Words({"ab", "c"}), 2);
  NgramCounts right = CountNgrams(Words({"a", "bc"}), 2);
  EXPECT_EQ(ClippedOverlap(left, right), 0);
}

TEST(ClippedOverlapTest, ClipsAtMinimumCount) {
  NgramCounts a = CountNgrams(Words({"x", "x", "x", "y"}), 1);
  NgramCounts b = CountNgrams(Words({"x", "y", "y"}), 1);
  // min(3,1) for x + min(1,2) for y = 2.
  EXPECT_EQ(ClippedOverlap(a, b), 2);
  EXPECT_EQ(ClippedOverlap(b, a), 2);  // Symmetric.
}

TEST(ClippedOverlapTest, DisjointIsZero) {
  NgramCounts a = CountNgrams(Words({"p"}), 1);
  NgramCounts b = CountNgrams(Words({"q"}), 1);
  EXPECT_EQ(ClippedOverlap(a, b), 0);
  EXPECT_EQ(ClippedOverlap(a, {}), 0);
}

TEST(LcsTest, ClassicExamples) {
  EXPECT_EQ(LcsLength(Words({"a", "b", "c", "d"}), Words({"a", "c", "d"})), 3u);
  EXPECT_EQ(LcsLength(Words({"a", "b"}), Words({"b", "a"})), 1u);
  EXPECT_EQ(LcsLength(Words({"x"}), Words({"y"})), 0u);
}

TEST(LcsTest, EmptySequences) {
  EXPECT_EQ(LcsLength({}, Words({"a"})), 0u);
  EXPECT_EQ(LcsLength(Words({"a"}), {}), 0u);
  EXPECT_EQ(LcsLength({}, {}), 0u);
}

TEST(LcsTest, IdenticalSequences) {
  auto seq = Words({"the", "battery", "is", "great"});
  EXPECT_EQ(LcsLength(seq, seq), seq.size());
}

TEST(LcsTest, SubsequenceNotSubstring) {
  // LCS is order-preserving but not contiguous.
  EXPECT_EQ(LcsLength(Words({"a", "x", "b", "y", "c"}),
                      Words({"a", "b", "c"})),
            3u);
}

TEST(LcsTest, Symmetric) {
  auto a = Words({"one", "two", "three", "four", "five"});
  auto b = Words({"two", "five", "one", "three"});
  EXPECT_EQ(LcsLength(a, b), LcsLength(b, a));
}

TEST(LcsTest, RepeatedTokens) {
  EXPECT_EQ(LcsLength(Words({"a", "a", "a"}), Words({"a", "a"})), 2u);
}

TEST(LcsTest, UpperBoundedByShorterLength) {
  auto a = Words({"a", "b", "c", "d", "e", "f"});
  auto b = Words({"c", "d"});
  EXPECT_LE(LcsLength(a, b), b.size());
}

}  // namespace
}  // namespace comparesets
