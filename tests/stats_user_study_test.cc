#include "stats/user_study.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace comparesets {
namespace {

std::vector<ExampleProxies> UniformProxies(double quality, size_t count = 9) {
  std::vector<ExampleProxies> out(count);
  for (ExampleProxies& proxies : out) {
    proxies.similarity = quality;
    proxies.informativeness = quality;
    proxies.comparability = quality;
  }
  return out;
}

TEST(UserStudyTest, HigherQualityGivesHigherMeans) {
  UserStudyConfig config;
  auto low = SimulateUserStudy(UniformProxies(0.15), config);
  auto high = SimulateUserStudy(UniformProxies(0.8), config);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(high.value().q1_mean, low.value().q1_mean);
  EXPECT_GT(high.value().q2_mean, low.value().q2_mean);
  EXPECT_GT(high.value().q3_mean, low.value().q3_mean);
}

TEST(UserStudyTest, MeansWithinLikertRange) {
  for (double quality : {0.0, 0.4, 1.0}) {
    auto result = SimulateUserStudy(UniformProxies(quality));
    ASSERT_TRUE(result.ok());
    for (double mean : {result.value().q1_mean, result.value().q2_mean,
                        result.value().q3_mean}) {
      EXPECT_GE(mean, 1.0);
      EXPECT_LE(mean, 5.0);
    }
  }
}

TEST(UserStudyTest, CoherentSelectionsGetHigherAgreement) {
  // The Table 7 mechanism: coherent (high similarity) examples produce
  // higher Krippendorff α than incoherent ones.
  UserStudyConfig config;
  auto coherent = SimulateUserStudy(UniformProxies(0.85), config);
  auto incoherent = SimulateUserStudy(UniformProxies(0.05), config);
  ASSERT_TRUE(coherent.ok());
  ASSERT_TRUE(incoherent.ok());
  EXPECT_GT(coherent.value().alpha, incoherent.value().alpha);
}

TEST(UserStudyTest, AlphaWithinBounds) {
  for (double quality : {0.1, 0.5, 0.9}) {
    auto result = SimulateUserStudy(UniformProxies(quality));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().alpha, -1.0);
    EXPECT_LE(result.value().alpha, 1.0);
  }
}

TEST(UserStudyTest, DeterministicUnderSeed) {
  UserStudyConfig config;
  config.seed = 77;
  auto a = SimulateUserStudy(UniformProxies(0.5), config);
  auto b = SimulateUserStudy(UniformProxies(0.5), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().q1_mean, b.value().q1_mean);
  EXPECT_DOUBLE_EQ(a.value().alpha, b.value().alpha);
}

TEST(UserStudyTest, InvalidConfigsRejected) {
  EXPECT_FALSE(SimulateUserStudy({}).ok());
  UserStudyConfig config;
  config.annotators_per_example = 20;
  config.num_annotators = 15;
  EXPECT_FALSE(SimulateUserStudy(UniformProxies(0.5), config).ok());
}

class ProxiesTest : public ::testing::Test {
 protected:
  ProxiesTest()
      : corpus_(testing::WorkingExampleCorpus()),
        instance_(testing::WorkingExampleInstance(corpus_)),
        vectors_(BuildInstanceVectors(OpinionModel::Binary(5), instance_)) {}

  Corpus corpus_;
  ProblemInstance instance_;
  InstanceVectors vectors_;
};

TEST_F(ProxiesTest, ProxiesInUnitInterval) {
  std::vector<Selection> selections = {{0, 1, 2}, {0, 1}, {2, 3}};
  ExampleProxies proxies =
      ComputeExampleProxies(vectors_, selections, {0, 1, 2});
  for (double v : {proxies.similarity, proxies.informativeness,
                   proxies.comparability}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(ProxiesTest, AlignedSelectionsScoreHigherSimilarity) {
  // Review index 2 of the comparatives covers battery/lens (target-ish
  // aspects); index 3 is price-only.
  std::vector<Selection> aligned = {{0}, {2}, {2}};
  std::vector<Selection> misaligned = {{0}, {3}, {3}};
  ExampleProxies a = ComputeExampleProxies(vectors_, aligned, {0, 1, 2});
  ExampleProxies b = ComputeExampleProxies(vectors_, misaligned, {0, 1, 2});
  EXPECT_GT(a.similarity, b.similarity);
  EXPECT_GT(a.comparability, b.comparability);
}

TEST_F(ProxiesTest, FullSelectionMaximizesInformativeness) {
  std::vector<Selection> full = {{0, 1, 2, 3, 4, 5},
                                 {0, 1, 2, 3, 4},
                                 {0, 1, 2, 3, 4}};
  ExampleProxies proxies = ComputeExampleProxies(vectors_, full, {0, 1, 2});
  EXPECT_NEAR(proxies.informativeness, 1.0, 1e-9);
}

TEST_F(ProxiesTest, SubsetOfItemsRespected) {
  std::vector<Selection> selections = {{0}, {2}, {3}};
  ExampleProxies pair = ComputeExampleProxies(vectors_, selections, {0, 1});
  ExampleProxies trio = ComputeExampleProxies(vectors_, selections, {0, 1, 2});
  // Adding the misaligned third item dilutes comparability.
  EXPECT_GE(pair.comparability, trio.comparability);
}

}  // namespace
}  // namespace comparesets
