// Process-level transport oracle: `comparesets serve --transport rpc`
// (which forks one shard_server child per shard and talks to them over
// Unix sockets) must print byte-identical output to `--transport local`
// (the in-process PR 5 router) — same per-query lines, same shard
// headers, same error text, same summary, same exit code. Only the
// solve_ms timing token is stripped before comparison; everything else
// is the deterministic payload.
//
// shard_server is resolved by the CLI from its own directory, so this
// test only needs COMPARESETS_CLI_PATH (both binaries live in
// build/tools/).

#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <string>

namespace comparesets {
namespace {

#ifndef COMPARESETS_CLI_PATH
#error "COMPARESETS_CLI_PATH must be defined by the build"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

// Unlike tools_cli_test's harness this captures stdout ONLY: the byte
// contract under comparison is the serve output stream, while stderr
// carries free-form child status lines ("shard 0/4 ... serving on ...")
// that are not part of it.
CommandResult RunCli(const std::string& arguments) {
  std::string command =
      std::string(COMPARESETS_CLI_PATH) + " " + arguments + " 2>/dev/null";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t read_bytes;
  while ((read_bytes = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), read_bytes);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// Removes every "solve_ms=<digits and dots>" token — the only
/// nondeterministic bytes in serve output.
std::string StripTimings(const std::string& text) {
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t hit = text.find("solve_ms=", pos);
    if (hit == std::string::npos) {
      out.append(text, pos, text.size() - pos);
      break;
    }
    out.append(text, pos, hit - pos);
    size_t end = hit + std::string("solve_ms=").size();
    while (end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '.')) {
      ++end;
    }
    pos = end;
  }
  return out;
}

std::string WriteQueriesFile() {
  std::string path = ::testing::TempDir() + "/rpc_cli_queries.txt";
  FILE* f = fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  fputs("# mixed selectors, a repeat (memo hit), and a failing target\n"
        "cellphone-P00000\n"
        "cellphone-P00010 CompaReSetS 2\n"
        "cellphone-P00025 CompaReSetSGreedy\n"
        "cellphone-P00000\n"
        "nosuch-product\n",
        f);
  fclose(f);
  return path;
}

class RpcCliTest : public ::testing::TestWithParam<int> {};

TEST_P(RpcCliTest, RpcTransportOutputMatchesLocal) {
  const int shards = GetParam();
  std::string queries = WriteQueriesFile();
  std::string base = "serve --products 60 --threads 1 --shards " +
                     std::to_string(shards) + " --queries " + queries;

  CommandResult local = RunCli(base + " --transport local");
  CommandResult rpc = RunCli(base + " --transport rpc");
  std::remove(queries.c_str());

  // One query intentionally fails, so both transports exit 1.
  EXPECT_EQ(local.exit_code, 1) << local.output;
  EXPECT_EQ(rpc.exit_code, local.exit_code) << rpc.output;
  EXPECT_EQ(StripTimings(rpc.output), StripTimings(local.output));
  // Sanity that the comparison is not vacuous: the shared output must
  // contain real answers, the error line, and (sharded) shard headers.
  EXPECT_NE(local.output.find("target=cellphone-P00000"), std::string::npos);
  EXPECT_NE(local.output.find("ERROR not found"), std::string::npos);
  if (shards > 1) {
    EXPECT_NE(local.output.find("shard 0 ["), std::string::npos);
    EXPECT_NE(local.output.find("across " + std::to_string(shards) +
                                " shards"),
              std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, RpcCliTest, ::testing::Values(1, 4));

}  // namespace
}  // namespace comparesets
