#include "stats/ttest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace comparesets {
namespace {

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(IncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(IncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetricIdentity) {
  // I_x(a, b) = 1 − I_{1−x}(b, a).
  for (double x : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(IncompleteBeta(2.5, 1.5, x),
                1.0 - IncompleteBeta(1.5, 2.5, 1.0 - x), 1e-10);
  }
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(IncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(StudentTTest, KnownCriticalValues) {
  // Two-sided p for t = 2.0 with df = 10 is ~0.0734; t = 2.228, df = 10
  // gives p ≈ 0.05 (classic table value).
  EXPECT_NEAR(StudentTTwoSidedPValue(2.0, 10.0), 0.0734, 5e-4);
  EXPECT_NEAR(StudentTTwoSidedPValue(2.228, 10.0), 0.05, 2e-3);
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 5.0), 1.0, 1e-12);
}

TEST(StudentTTest, SymmetricInT) {
  EXPECT_NEAR(StudentTTwoSidedPValue(1.7, 8.0),
              StudentTTwoSidedPValue(-1.7, 8.0), 1e-12);
}

TEST(StudentTTest, LargeDfApproachesNormal) {
  // t = 1.96 with huge df: p ≈ 0.05.
  EXPECT_NEAR(StudentTTwoSidedPValue(1.96, 100000.0), 0.05, 1e-3);
}

TEST(PairedTTestTest, ClearDifferenceIsSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    double base = rng.Normal(0.0, 1.0);
    a.push_back(base + 1.0);  // Consistent +1 shift.
    b.push_back(base);
  }
  TTestResult result = PairedTTest(a, b);
  EXPECT_NEAR(result.mean_difference, 1.0, 1e-9);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_TRUE(result.Significant());
  EXPECT_DOUBLE_EQ(result.degrees_of_freedom, 29.0);
}

TEST(PairedTTestTest, NoisyEqualMeansNotSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(2);
  for (int i = 0; i < 40; ++i) {
    a.push_back(rng.Normal(0.0, 1.0));
    b.push_back(rng.Normal(0.0, 1.0));
  }
  TTestResult result = PairedTTest(a, b);
  EXPECT_GT(result.p_value, 0.05);
  EXPECT_FALSE(result.Significant());
}

TEST(PairedTTestTest, IdenticalSeriesDegenerate) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  TTestResult result = PairedTTest(a, a);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  EXPECT_DOUBLE_EQ(result.mean_difference, 0.0);
  EXPECT_FALSE(result.Significant());
}

TEST(PairedTTestTest, ConstantShiftDegenerate) {
  // Differences are constant nonzero: zero variance, p = 0.
  std::vector<double> a = {2.0, 3.0, 4.0};
  std::vector<double> b = {1.0, 2.0, 3.0};
  TTestResult result = PairedTTest(a, b);
  EXPECT_DOUBLE_EQ(result.p_value, 0.0);
  EXPECT_TRUE(result.Significant());
}

TEST(PairedTTestTest, PairedBeatsUnpairedIntuition) {
  // Large shared variance but consistent small improvement: paired test
  // detects it (this is why the paper uses paired significance).
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    double shared = rng.Normal(0.0, 10.0);
    a.push_back(shared + 0.2 + rng.Normal(0.0, 0.05));
    b.push_back(shared);
  }
  TTestResult result = PairedTTest(a, b);
  EXPECT_LT(result.p_value, 1e-6);
}

}  // namespace
}  // namespace comparesets
