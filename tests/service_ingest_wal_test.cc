// The WAL's durability contract: every committed record replays back
// bit-identically, and ANY damage past the committed prefix — a torn
// tail from a crashed producer, a flipped byte on disk, a foreign
// record version — truncates recovery at the damage, never misparses,
// never crashes. The crash-recovery property sweep cuts and corrupts a
// real log at seeded random positions (including mid-record) and
// demands exactly the longest committed prefix back every time.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "service/ingest/wal.h"
#include "util/rng.h"

namespace comparesets {
namespace {

WalRecord SampleRecord(size_t i) {
  WalRecord record;
  record.product_id = "cellphone-P" + std::to_string(i % 7);
  record.review_id = "stream-r" + std::to_string(i);
  record.reviewer_id = "reviewer-" + std::to_string(i % 5);
  record.text = "battery life is great but the screen scratches #" +
                std::to_string(i);
  record.rating = 1.0 + static_cast<double>(i % 5);
  record.opinions.push_back({"battery", Polarity::kPositive, 1.5});
  record.opinions.push_back({"screen", Polarity::kNegative, 0.75});
  if (i % 3 == 0) {
    record.opinions.push_back({"price", Polarity::kNeutral, 0.25});
  }
  return record;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(WalCodecTest, RecordRoundTripsBitIdentically) {
  WalRecord record = SampleRecord(4);
  std::string payload = EncodeWalRecord(record);
  auto decoded = DecodeWalRecord(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value(), record);
}

TEST(WalCodecTest, EmptyOpinionListAndExtremeRatingsRoundTrip) {
  WalRecord record;
  record.product_id = "p";
  record.rating = -0.0;
  auto decoded = DecodeWalRecord(EncodeWalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value(), record);
  EXPECT_TRUE(std::signbit(decoded.value().rating));
}

TEST(WalCodecTest, TruncatedPayloadIsParseError) {
  std::string payload = EncodeWalRecord(SampleRecord(0));
  for (size_t cut : {size_t{0}, size_t{1}, payload.size() / 2,
                     payload.size() - 1}) {
    auto decoded = DecodeWalRecord(std::string_view(payload).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(WalCodecTest, TrailingGarbageIsParseError) {
  std::string payload = EncodeWalRecord(SampleRecord(0)) + "x";
  EXPECT_FALSE(DecodeWalRecord(payload).ok());
}

TEST(WalCodecTest, ForeignVersionIsRefused) {
  std::string payload = EncodeWalRecord(SampleRecord(0));
  payload[0] = 9;  // u16 version, little-endian low byte.
  auto decoded = DecodeWalRecord(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalCodecTest, OutOfRangePolarityIsRefused) {
  WalRecord record = SampleRecord(0);
  std::string payload = EncodeWalRecord(record);
  // The last opinion's polarity byte sits 8 bytes (strength) from the
  // end; stomp it with an undefined enum value.
  payload[payload.size() - 9] = 17;
  EXPECT_FALSE(DecodeWalRecord(payload).ok());
}

TEST(WalCodecTest, ReviewConversionRoundTripsThroughTheCatalog) {
  AspectCatalog catalog;
  catalog.Intern("battery");
  catalog.Intern("screen");

  Review review;
  review.id = "r1";
  review.reviewer_id = "u1";
  review.text = "solid battery";
  review.rating = 4.0;
  review.opinions.push_back({catalog.Intern("battery"),
                             Polarity::kPositive, 2.0});
  review.opinions.push_back({catalog.Intern("screen"),
                             Polarity::kNegative, 1.0});

  WalRecord record = MakeWalRecord("p1", review, catalog);
  EXPECT_EQ(record.opinions[0].aspect, "battery");
  EXPECT_EQ(record.opinions[1].aspect, "screen");

  // Apply against a FRESH catalog: names intern to new ids, and the
  // review body survives unchanged.
  AspectCatalog fresh;
  Review rebuilt = WalRecordToReview(record, &fresh);
  EXPECT_EQ(rebuilt.id, review.id);
  EXPECT_EQ(rebuilt.reviewer_id, review.reviewer_id);
  EXPECT_EQ(rebuilt.text, review.text);
  EXPECT_EQ(rebuilt.rating, review.rating);
  ASSERT_EQ(rebuilt.opinions.size(), review.opinions.size());
  EXPECT_EQ(fresh.Name(rebuilt.opinions[0].aspect), "battery");
  EXPECT_EQ(fresh.Name(rebuilt.opinions[1].aspect), "screen");
  EXPECT_EQ(rebuilt.opinions[0].strength, 2.0);
}

TEST(WalWriterTest, AppendReplayRoundTrip) {
  std::string path = TempPath("wal_round_trip.wal");
  std::remove(path.c_str());

  std::vector<WalRecord> written;
  {
    auto writer = WalWriter::Open(path, WalWriterOptions{/*fsync_every=*/4});
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (size_t i = 0; i < 17; ++i) {
      written.push_back(SampleRecord(i));
      ASSERT_TRUE(writer.value().Append(written.back()).ok());
    }
    EXPECT_EQ(writer.value().records_appended(), 17u);
    ASSERT_TRUE(writer.value().Close().ok());
  }

  auto replayed = ReplayWal(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed.value().records, written);
  EXPECT_EQ(replayed.value().dropped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(WalWriterTest, ReplayFromOffsetTailsOnlyNewRecords) {
  std::string path = TempPath("wal_tail.wal");
  std::remove(path.c_str());

  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(writer.value().Append(SampleRecord(i)).ok());
  }
  ASSERT_TRUE(writer.value().Sync().ok());

  auto first = ReplayWal(path);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first.value().records.size(), 5u);
  uint64_t offset = first.value().valid_bytes;

  // The tail picks up exactly the records appended after the offset.
  for (size_t i = 5; i < 8; ++i) {
    ASSERT_TRUE(writer.value().Append(SampleRecord(i)).ok());
  }
  ASSERT_TRUE(writer.value().Close().ok());

  auto tail = ReplayWal(path, offset);
  ASSERT_TRUE(tail.ok()) << tail.status();
  ASSERT_EQ(tail.value().records.size(), 3u);
  EXPECT_EQ(tail.value().records[0], SampleRecord(5));
  EXPECT_EQ(tail.value().records[2], SampleRecord(7));
  std::remove(path.c_str());
}

TEST(WalReplayTest, MissingFileIsNotFound) {
  auto replayed = ReplayWal(TempPath("wal_never_written.wal"));
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kNotFound);
}

TEST(WalReplayTest, EmptyFileReplaysToZeroRecords) {
  std::string path = TempPath("wal_empty.wal");
  WriteFile(path, "");
  auto replayed = ReplayWal(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(replayed.value().records.empty());
  EXPECT_EQ(replayed.value().valid_bytes, 0u);
  EXPECT_EQ(replayed.value().dropped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(WalReplayTest, OversizedLengthPrefixStopsRecovery) {
  // A length prefix past the record cap must stop replay cold, not
  // attempt the allocation.
  std::string log;
  AppendWalFrame(SampleRecord(0), &log);
  uint64_t committed = log.size();
  uint32_t huge = kMaxWalRecordBytes + 1;
  log.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  log.append(4, '\0');
  log.append("payload-bytes-we-must-not-trust");

  std::string path = TempPath("wal_oversized.wal");
  WriteFile(path, log);
  auto replayed = ReplayWal(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed.value().records.size(), 1u);
  EXPECT_EQ(replayed.value().valid_bytes, committed);
  EXPECT_EQ(replayed.value().dropped_bytes, log.size() - committed);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Crash-recovery property sweep: for a log of N records, every seeded
// random truncation (including mid-header and mid-payload) and every
// seeded random byte flip recovers exactly the records whose complete,
// valid frames precede the damage — the longest committed prefix.
// ---------------------------------------------------------------------------

class WalCrashRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalCrashRecoveryTest, RandomTruncationRecoversTheCommittedPrefix) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  std::string log;
  std::vector<WalRecord> records;
  std::vector<uint64_t> frame_ends;  // byte offset after record i's frame
  for (size_t i = 0; i < 24; ++i) {
    records.push_back(SampleRecord(i * 31 + seed));
    AppendWalFrame(records.back(), &log);
    frame_ends.push_back(log.size());
  }

  std::string path = TempPath("wal_crash_" + std::to_string(seed) + ".wal");
  for (int trial = 0; trial < 40; ++trial) {
    // Cut anywhere in [0, size]: between frames, mid-header, mid-payload.
    size_t cut = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int>(log.size())));
    WriteFile(path, log.substr(0, cut));

    size_t expected = 0;
    while (expected < frame_ends.size() && frame_ends[expected] <= cut) {
      ++expected;
    }
    uint64_t committed = expected == 0 ? 0 : frame_ends[expected - 1];

    auto replayed = ReplayWal(path);
    ASSERT_TRUE(replayed.ok()) << replayed.status();
    ASSERT_EQ(replayed.value().records.size(), expected)
        << "seed " << seed << " cut " << cut;
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(replayed.value().records[i], records[i]);
    }
    EXPECT_EQ(replayed.value().valid_bytes, committed);
    EXPECT_EQ(replayed.value().dropped_bytes, cut - committed);
  }
  std::remove(path.c_str());
}

TEST_P(WalCrashRecoveryTest, RandomByteFlipRecoversUpToTheDamagedFrame) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  std::string log;
  std::vector<WalRecord> records;
  std::vector<uint64_t> frame_ends;
  for (size_t i = 0; i < 24; ++i) {
    records.push_back(SampleRecord(i * 17 + seed));
    AppendWalFrame(records.back(), &log);
    frame_ends.push_back(log.size());
  }

  std::string path = TempPath("wal_corrupt_" + std::to_string(seed) + ".wal");
  for (int trial = 0; trial < 40; ++trial) {
    size_t victim = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int>(log.size()) - 1));
    std::string damaged = log;
    damaged[victim] = static_cast<char>(damaged[victim] ^ 0x5a);
    WriteFile(path, damaged);

    // The damaged byte lives inside exactly one frame; everything
    // before that frame is the committed prefix. (A corrupted length
    // or CRC field fails the frame just like a corrupted payload.)
    size_t damaged_frame = 0;
    while (frame_ends[damaged_frame] <= victim) ++damaged_frame;
    uint64_t committed = damaged_frame == 0 ? 0 : frame_ends[damaged_frame - 1];

    auto replayed = ReplayWal(path);
    ASSERT_TRUE(replayed.ok()) << replayed.status();
    ASSERT_EQ(replayed.value().records.size(), damaged_frame)
        << "seed " << seed << " victim byte " << victim;
    for (size_t i = 0; i < damaged_frame; ++i) {
      EXPECT_EQ(replayed.value().records[i], records[i]);
    }
    EXPECT_EQ(replayed.value().valid_bytes, committed);
    EXPECT_EQ(replayed.value().dropped_bytes, damaged.size() - committed);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalCrashRecoveryTest,
                         ::testing::Values(7u, 1234u, 99991u));

}  // namespace
}  // namespace comparesets
