#include "util/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace comparesets {
namespace {

TEST(TimerTest, ElapsedGrowsMonotonically) {
  Timer timer;
  double first = timer.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double second = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GT(second, first);
  EXPECT_GE(timer.ElapsedMicros(), 5000);
}

TEST(TimerTest, RestartResetsClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.004);
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline deadline(0.005);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingSeconds(), 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_LE(deadline.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, NonPositiveBudgetNeverExpires) {
  Deadline unlimited(0.0);
  EXPECT_FALSE(unlimited.Expired());
  EXPECT_GT(unlimited.RemainingSeconds(), 1e20);
  Deadline negative(-1.0);
  EXPECT_FALSE(negative.Expired());
}

}  // namespace
}  // namespace comparesets
