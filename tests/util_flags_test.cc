#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace comparesets {
namespace {

class FlagsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flags_.AddInt("count", 10, "number of things");
    flags_.AddDouble("rate", 0.5, "a rate");
    flags_.AddString("name", "dflt", "a name");
    flags_.AddBool("verbose", false, "chatty output");
  }

  Status Parse(std::vector<const char*> args) {
    args.insert(args.begin(), "prog");
    return flags_.Parse(static_cast<int>(args.size()),
                        const_cast<char**>(args.data()));
  }

  FlagParser flags_;
};

TEST_F(FlagsTest, DefaultsApplyWithoutArgs) {
  ASSERT_TRUE(Parse({}).ok());
  EXPECT_EQ(flags_.GetInt("count"), 10);
  EXPECT_DOUBLE_EQ(flags_.GetDouble("rate"), 0.5);
  EXPECT_EQ(flags_.GetString("name"), "dflt");
  EXPECT_FALSE(flags_.GetBool("verbose"));
}

TEST_F(FlagsTest, EqualsSyntax) {
  ASSERT_TRUE(Parse({"--count=42", "--rate=1.25", "--name=abc",
                     "--verbose=true"})
                  .ok());
  EXPECT_EQ(flags_.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags_.GetDouble("rate"), 1.25);
  EXPECT_EQ(flags_.GetString("name"), "abc");
  EXPECT_TRUE(flags_.GetBool("verbose"));
}

TEST_F(FlagsTest, SpaceSyntax) {
  ASSERT_TRUE(Parse({"--count", "-3", "--name", "x y"}).ok());
  EXPECT_EQ(flags_.GetInt("count"), -3);
  EXPECT_EQ(flags_.GetString("name"), "x y");
}

TEST_F(FlagsTest, BareBoolEnables) {
  ASSERT_TRUE(Parse({"--verbose"}).ok());
  EXPECT_TRUE(flags_.GetBool("verbose"));
}

TEST_F(FlagsTest, BoolWithExplicitValue) {
  ASSERT_TRUE(Parse({"--verbose", "false"}).ok());
  EXPECT_FALSE(flags_.GetBool("verbose"));
}

TEST_F(FlagsTest, UnknownFlagIsError) {
  Status status = Parse({"--bogus=1"});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(FlagsTest, BadIntIsError) {
  EXPECT_FALSE(Parse({"--count=abc"}).ok());
  EXPECT_FALSE(Parse({"--count=1.5"}).ok());
}

TEST_F(FlagsTest, BadDoubleIsError) {
  EXPECT_FALSE(Parse({"--rate=fast"}).ok());
}

TEST_F(FlagsTest, BadBoolIsError) {
  EXPECT_FALSE(Parse({"--verbose=maybe"}).ok());
}

TEST_F(FlagsTest, MissingValueIsError) {
  EXPECT_FALSE(Parse({"--count"}).ok());
}

TEST_F(FlagsTest, PositionalArgumentIsError) {
  EXPECT_FALSE(Parse({"stray"}).ok());
}

TEST_F(FlagsTest, HelpSetsFlagAndSucceeds) {
  ASSERT_TRUE(Parse({"--help"}).ok());
  EXPECT_TRUE(flags_.help_requested());
}

TEST_F(FlagsTest, UsageListsAllFlags) {
  std::string usage = flags_.Usage("prog");
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--rate"), std::string::npos);
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("number of things"), std::string::npos);
}

}  // namespace
}  // namespace comparesets
