// The transport oracle: the RPC serving path must be a bitwise no-op.
// For N ∈ {1, 2, 4} shards, an RpcShardRouter talking to real
// ShardServer processes-worth of state over Unix sockets must answer
// byte-identically — full payload, cache flags, and Status (code AND
// message) — to the in-process ShardRouter AND to one SelectionEngine
// over the whole corpus. The equality must survive injected transport
// faults (connect / send / recv), mid-gather deadline expiry, and
// hedged requests, because none of those may ever change WHAT is
// answered — only how the bytes got there.
//
// The servers here run in-process threads rather than forked children
// (tools_rpc_cli_test covers the multi-process topology end to end);
// the wire path — framing, serialization, socket I/O, pooling — is the
// real one either way.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "net/client.h"
#include "net/server.h"
#include "service/backend.h"
#include "service/router.h"
#include "service/rpc_router.h"

namespace comparesets {
namespace {

std::shared_ptr<const IndexedCorpus> MakeCorpus(size_t products,
                                                uint64_t seed = 42) {
  auto config = DefaultConfig("Cellphone", products);
  config.status().CheckOK();
  config.value().seed = seed;
  auto corpus = GenerateCorpus(config.value());
  corpus.status().CheckOK();
  return IndexedCorpus::Build(std::move(corpus).value()).ValueOrDie();
}

void ExpectSameRouge(const RougeScore& got, const RougeScore& want) {
  EXPECT_EQ(got.precision, want.precision);
  EXPECT_EQ(got.recall, want.recall);
  EXPECT_EQ(got.f1, want.f1);
}

void ExpectSameTriple(const RougeTriple& got, const RougeTriple& want) {
  ExpectSameRouge(got.rouge1, want.rouge1);
  ExpectSameRouge(got.rouge2, want.rouge2);
  ExpectSameRouge(got.rougeL, want.rougeL);
}

/// Bit-for-bit payload + cache-flag + Status equality, as in the
/// in-process sharding oracle (service_router_determinism_test.cc).
/// Doubles compare with ==, so this checks IEEE-754 bit patterns after
/// a round trip through the wire codec.
void ExpectSameResponse(const Result<SelectResponse>& got,
                        const Result<SelectResponse>& want,
                        const std::string& where, bool check_flags = true) {
  ASSERT_EQ(got.ok(), want.ok())
      << where << ": " << got.status() << " vs " << want.status();
  if (!want.ok()) {
    EXPECT_TRUE(got.status() == want.status())
        << where << ": " << got.status() << " vs " << want.status();
    return;
  }
  const SelectResponse& g = got.value();
  const SelectResponse& w = want.value();
  EXPECT_EQ(g.target_id, w.target_id) << where;
  EXPECT_EQ(g.item_ids, w.item_ids) << where;
  EXPECT_EQ(g.selections, w.selections) << where;
  EXPECT_EQ(g.objective, w.objective) << where;
  // The oracle streams run at the exact floor: the tier must survive
  // the wire round-trip and match the in-process answer on both sides.
  EXPECT_EQ(g.tier, w.tier) << where;
  EXPECT_EQ(g.objective_gap, w.objective_gap) << where;
  EXPECT_EQ(g.tier, QualityTier::kExact) << where;
  EXPECT_EQ(g.objective_gap, 0.0) << where;
  ExpectSameTriple(g.alignment.target_vs_comparative,
                   w.alignment.target_vs_comparative);
  ExpectSameTriple(g.alignment.among_items, w.alignment.among_items);
  EXPECT_EQ(g.alignment.target_pairs, w.alignment.target_pairs) << where;
  EXPECT_EQ(g.alignment.among_pairs, w.alignment.among_pairs) << where;
  if (check_flags) {
    EXPECT_EQ(g.cache_hit, w.cache_hit) << where;
    EXPECT_EQ(g.result_cache_hit, w.result_cache_hit) << where;
  }
}

/// Same mixed stream as the in-process oracle: several selectors, exact
/// repeats (memo hits), an explicit comparative set, and both failure
/// kinds.
std::vector<SelectRequest> MixedStream(const IndexedCorpus& corpus) {
  std::vector<SelectRequest> requests;
  const std::vector<ProblemInstance>& instances = corpus.instances();
  const char* selectors[] = {"CompaReSetS", "CompaReSetS+", "CompaReSetSGreedy"};
  for (size_t i = 0; i < 9 && i < instances.size(); ++i) {
    SelectRequest request;
    request.target_id = instances[i].target().id;
    request.selector = selectors[i % 3];
    requests.push_back(request);
  }
  for (size_t i = 0; i < 3; ++i) requests.push_back(requests[i]);
  SelectRequest explicit_set;
  explicit_set.target_id = instances[0].target().id;
  explicit_set.comparative_ids = {instances[0].items[1]->id,
                                  instances[0].items[2]->id};
  explicit_set.selector = "CompaReSetS";
  requests.push_back(explicit_set);
  SelectRequest unknown;
  unknown.target_id = "no-such-product";
  requests.push_back(unknown);
  requests.push_back(SelectRequest{});
  return requests;
}

/// A fleet of shard servers over Unix sockets plus an RpcShardRouter
/// fronting them — the whole RPC stack, minus fork/exec.
struct RpcFixture {
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::unique_ptr<RpcShardRouter> router;
  /// Borrowed pointers into router's backends, for stats.
  std::vector<RpcShardBackend*> rpc_backends;

  ~RpcFixture() {
    router.reset();  // Drop pooled connections before servers stop.
    for (auto& server : servers) {
      if (server) server->Shutdown();
    }
  }
};

/// Builds one server per shard (range slices of `corpus`), then an
/// RpcShardRouter of RpcShardBackends pointing at them.
std::unique_ptr<RpcFixture> StartFleet(
    std::shared_ptr<const IndexedCorpus> corpus, size_t num_shards,
    const EngineOptions& engine_options, const std::string& socket_tag,
    std::shared_ptr<FaultInjector> client_faults = nullptr,
    std::shared_ptr<FaultInjector> router_faults = nullptr,
    int max_transport_attempts = 0) {
  auto local = CreateLocalBackends(corpus, num_shards, engine_options);
  local.status().CheckOK();

  auto fixture = std::make_unique<RpcFixture>();
  std::vector<std::unique_ptr<ShardBackend>> rpc_backends;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    ShardServerOptions server_options;
    server_options.address = "unix:" + ::testing::TempDir() + "/oracle-" +
                             socket_tag + "-" + std::to_string(shard) + ".sock";
    auto server = ShardServer::Start(
        std::move(local.value().backends[shard]), server_options);
    server.status().CheckOK();

    RpcBackendOptions backend_options;
    backend_options.replicas = {server.value()->bound_address()};
    backend_options.shard_id = shard;
    backend_options.fault_injector = client_faults;
    backend_options.max_transport_attempts = max_transport_attempts;
    auto backend = RpcShardBackend::Create(backend_options);
    backend.status().CheckOK();
    fixture->rpc_backends.push_back(backend.value().get());
    rpc_backends.push_back(std::move(backend).value());
    fixture->servers.push_back(std::move(server).value());
  }

  RpcRouterOptions router_options;
  router_options.router_threads = 1;
  router_options.fault_injector = std::move(router_faults);
  auto router = RpcShardRouter::Create(
      std::move(local).value().bounds, std::move(rpc_backends), router_options);
  router.status().CheckOK();
  fixture->router = std::move(router).value();
  fixture->router->WaitReady(30.0).CheckOK();
  return fixture;
}

class TransportOracleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TransportOracleTest, RpcMatchesLocalRouterAndSingleEngine) {
  const size_t num_shards = GetParam();
  auto corpus = MakeCorpus(80);
  EngineOptions engine_options;
  engine_options.threads = 1;

  SelectionEngine reference(corpus, engine_options);
  RouterOptions router_options;
  router_options.engine = engine_options;
  router_options.router_threads = 1;
  auto local_router = ShardRouter::Create(corpus, num_shards, router_options);
  ASSERT_TRUE(local_router.ok()) << local_router.status();

  auto fleet = StartFleet(corpus, num_shards, engine_options,
                          "plain" + std::to_string(num_shards));
  ASSERT_EQ(fleet->router->num_shards(), num_shards);

  // Health first: every shard must expose its slice accurately.
  std::vector<Result<ShardHealth>> health = fleet->router->ProbeAll();
  size_t instances_total = 0;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    ASSERT_TRUE(health[shard].ok()) << health[shard].status();
    EXPECT_TRUE(health[shard].value().ready);
    EXPECT_EQ(health[shard].value().shard_id, shard);
    instances_total += health[shard].value().num_instances;
  }
  EXPECT_EQ(instances_total, corpus->instances().size());

  // One-at-a-time Selects: rpc == local router == single engine.
  for (const SelectRequest& request : MixedStream(*corpus)) {
    Result<SelectResponse> want = reference.Select(request);
    ExpectSameResponse(local_router.value()->Select(request), want,
                       "local Select target=" + request.target_id);
    ExpectSameResponse(fleet->router->Select(request), want,
                       "rpc Select target=" + request.target_id);
  }

  // Batch path: the request stream crosses the wire as one frame per
  // shard, so windowing/memo semantics inside each engine are
  // preserved exactly.
  auto fresh_corpus = MakeCorpus(80);
  SelectionEngine fresh_reference(fresh_corpus, engine_options);
  auto fresh_fleet = StartFleet(fresh_corpus, num_shards, engine_options,
                                "batch" + std::to_string(num_shards));
  std::vector<SelectRequest> requests = MixedStream(*fresh_corpus);
  std::vector<Result<SelectResponse>> want =
      fresh_reference.SelectBatch(requests);
  std::vector<Result<SelectResponse>> got =
      fresh_fleet->router->SelectBatch(requests);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(got[i], want[i],
                       "rpc batch[" + std::to_string(i) +
                           "] target=" + requests[i].target_id);
  }
}

TEST_P(TransportOracleTest, TransportFaultsNeverChangeAnswers) {
  const size_t num_shards = GetParam();
  auto corpus = MakeCorpus(60);
  EngineOptions engine_options;
  engine_options.threads = 1;
  SelectionEngine reference(corpus, engine_options);

  // Every transport seam fails a few times up front AND keeps failing
  // at a steady rate; with enough attempts budgeted, retry-to-replica
  // absorbs all of it and the payload equality must be untouched.
  FaultPlan plan;
  plan.seed = 7;
  plan.connect.fail_first = 2;
  plan.send.fail_first = 2;
  plan.send.error_rate = 0.2;
  plan.recv.fail_first = 2;
  plan.recv.error_rate = 0.2;
  auto injector = std::make_shared<FaultInjector>(plan);

  auto fleet = StartFleet(corpus, num_shards, engine_options,
                          "faults" + std::to_string(num_shards), injector,
                          nullptr, /*max_transport_attempts=*/64);

  // Payload + Status must match bit-for-bit. Warm-state flags are
  // deliberately NOT compared here: a recv fault fires AFTER the
  // request reached the server, so the retry re-executes it
  // (at-least-once delivery) and legitimately memo-hits state the
  // never-failed reference hasn't built yet. The answer's bytes are
  // identical either way — that is the transport guarantee.
  for (const SelectRequest& request : MixedStream(*corpus)) {
    ExpectSameResponse(fleet->router->Select(request),
                       reference.Select(request),
                       "faulted Select target=" + request.target_id,
                       /*check_flags=*/false);
  }
  EXPECT_GT(injector->injected_errors(), 0u);
  uint64_t retries = 0;
  for (RpcShardBackend* backend : fleet->rpc_backends) {
    retries += backend->transport_retries();
  }
  EXPECT_GT(retries, 0u);
}

TEST_P(TransportOracleTest, MidGatherDeadlineExpiryIsCanonicalOnBothPaths) {
  const size_t num_shards = GetParam();
  if (num_shards < 2) {
    GTEST_SKIP() << "needs >= 2 shards for a mid-gather expiry";
  }
  auto corpus = MakeCorpus(60);
  EngineOptions engine_options;
  engine_options.threads = 1;

  // Both routers sleep 50 ms at every gather seam under identical
  // plans; requests carry a 5 ms deadline. Serial gather order means
  // shard 0's sleep burns the budget, so every request bound for a
  // later shard is dropped pre-dispatch with the router's canonical
  // message — identically on the local and the RPC path.
  auto make_plan = [] {
    FaultPlan plan;
    plan.seed = 11;
    plan.gather.delay_rate = 1.0;
    plan.gather.delay_seconds = 0.05;
    return plan;
  };
  RouterOptions local_options;
  local_options.engine = engine_options;
  local_options.router_threads = 1;
  local_options.fault_injector = std::make_shared<FaultInjector>(make_plan());
  auto local_router = ShardRouter::Create(corpus, num_shards, local_options);
  ASSERT_TRUE(local_router.ok()) << local_router.status();

  auto fleet = StartFleet(corpus, num_shards, engine_options,
                          "deadline" + std::to_string(num_shards), nullptr,
                          std::make_shared<FaultInjector>(make_plan()));

  std::vector<SelectRequest> requests;
  for (const ProblemInstance& instance : corpus->instances()) {
    SelectRequest request;
    request.target_id = instance.target().id;
    request.deadline_seconds = 0.005;
    requests.push_back(request);
    if (requests.size() == 8) break;
  }

  std::vector<Result<SelectResponse>> want =
      local_router.value()->SelectBatch(requests);
  std::vector<Result<SelectResponse>> got = fleet->router->SelectBatch(requests);
  ASSERT_EQ(got.size(), want.size());
  size_t expired = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(got[i].ok(), want[i].ok()) << "deadline batch[" << i << "]";
    if (!want[i].ok()) {
      EXPECT_TRUE(got[i].status() == want[i].status())
          << got[i].status() << " vs " << want[i].status();
      if (want[i].status().code() == StatusCode::kDeadlineExceeded &&
          want[i].status().message().find(
              "deadline exceeded before gather dispatch to shard") !=
              std::string::npos) {
        ++expired;
      }
    }
  }
  // The scenario is only meaningful if the canonical expiry actually
  // fired; with a 50 ms sleep against a 5 ms budget it always does.
  EXPECT_GT(expired, 0u);
}

TEST(TransportHedgingTest, HedgedSelectsMatchAndLeaveNoResidue) {
  auto corpus = MakeCorpus(60);
  EngineOptions engine_options;
  engine_options.threads = 1;
  SelectionEngine reference(corpus, engine_options);

  // Two replica servers over the SAME whole corpus (shards=1 twice).
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<std::string> replicas;
  for (int replica = 0; replica < 2; ++replica) {
    auto local = CreateLocalBackends(corpus, 1, engine_options);
    local.status().CheckOK();
    ShardServerOptions server_options;
    server_options.address = "unix:" + ::testing::TempDir() + "/oracle-hedge-" +
                             std::to_string(replica) + ".sock";
    auto server = ShardServer::Start(std::move(local.value().backends[0]),
                                     server_options);
    server.status().CheckOK();
    replicas.push_back(server.value()->bound_address());
    servers.push_back(std::move(server).value());
  }

  RpcBackendOptions backend_options;
  backend_options.replicas = replicas;
  backend_options.hedge_selects = true;
  auto backend = RpcShardBackend::Create(backend_options);
  backend.status().CheckOK();

  // Every hedged Select must return the FIRST replica answer — which,
  // with deterministic engines on identical corpora, is byte-identical
  // to the reference no matter which leg won the race.
  std::vector<SelectRequest> requests = MixedStream(*corpus);
  for (const SelectRequest& request : requests) {
    ExpectSameResponse(backend.value()->Select(request),
                       reference.Select(request),
                       "hedged Select target=" + request.target_id);
  }
  EXPECT_GT(backend.value()->hedged_selects(), 0u);

  // No duplicate side effects: the losing leg's late answer must never
  // surface later. Re-running the stream uses pooled (winner) and
  // fresh connections; if a stale response were sitting in a pooled
  // channel, these repeats would read the WRONG frame and diverge.
  for (const SelectRequest& request : requests) {
    ExpectSameResponse(backend.value()->Select(request),
                       reference.Select(request),
                       "post-hedge repeat target=" + request.target_id);
  }

  backend.value().reset();
  for (auto& server : servers) server->Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Shards, TransportOracleTest,
                         ::testing::Values(1u, 2u, 4u));

}  // namespace
}  // namespace comparesets
