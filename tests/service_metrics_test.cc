#include "service/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace comparesets {
namespace {

TEST(MetricsSnapshotTest, CopiesEveryInstrumentSortedByName) {
  MetricsRegistry registry;
  registry.counter("engine.requests").Increment(3);
  registry.counter("engine.errors").Increment();
  registry.SetGauge("cache.entries", 2.0);
  registry.histogram("engine.solve_seconds").Observe(0.5);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "engine.errors");  // std::map order.
  EXPECT_EQ(snapshot.counters[0].second, 1u);
  EXPECT_EQ(snapshot.counters[1].first, "engine.requests");
  EXPECT_EQ(snapshot.counters[1].second, 3u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 2.0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count, 1u);
  EXPECT_EQ(snapshot.histograms[0].second.sum, 0.5);
}

// Golden output for the single-registry exposition: sanitized names,
// `_total` counter suffix, cumulative decade buckets, families sorted.
TEST(RenderPrometheusTest, GoldenSingleRegistry) {
  MetricsRegistry registry;
  registry.counter("engine.requests").Increment(3);
  registry.SetGauge("cache.entries", 2.0);
  registry.histogram("engine.solve_seconds").Observe(0.5);

  const std::string expected =
      "# TYPE cache_entries gauge\n"
      "cache_entries 2\n"
      "# TYPE engine_requests_total counter\n"
      "engine_requests_total 3\n"
      "# TYPE engine_solve_seconds histogram\n"
      "engine_solve_seconds_bucket{le=\"1e-05\"} 0\n"
      "engine_solve_seconds_bucket{le=\"0.0001\"} 0\n"
      "engine_solve_seconds_bucket{le=\"0.001\"} 0\n"
      "engine_solve_seconds_bucket{le=\"0.01\"} 0\n"
      "engine_solve_seconds_bucket{le=\"0.1\"} 0\n"
      "engine_solve_seconds_bucket{le=\"1\"} 1\n"
      "engine_solve_seconds_bucket{le=\"10\"} 1\n"
      "engine_solve_seconds_bucket{le=\"100\"} 1\n"
      "engine_solve_seconds_bucket{le=\"1000\"} 1\n"
      "engine_solve_seconds_bucket{le=\"+Inf\"} 1\n"
      "engine_solve_seconds_sum 0.5\n"
      "engine_solve_seconds_count 1\n";
  EXPECT_EQ(registry.RenderPrometheus(), expected);
}

TEST(RenderPrometheusTest, LabelsArePastedIntoEverySample) {
  MetricsRegistry registry;
  registry.counter("router.requests").Increment(7);
  registry.histogram("engine.queue_seconds").Observe(0.002);

  std::string out = registry.RenderPrometheus("shard=\"4\"");
  EXPECT_NE(out.find("router_requests_total{shard=\"4\"} 7\n"),
            std::string::npos)
      << out;
  // The le label composes with the shard label on bucket samples.
  EXPECT_NE(out.find(
                "engine_queue_seconds_bucket{shard=\"4\",le=\"0.01\"} 1\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("engine_queue_seconds_count{shard=\"4\"} 1\n"),
            std::string::npos);
}

// The router's use case: N shard registries merge into one exposition
// document with one `# TYPE` header per family and one sample per
// label set — never a repeated header (invalid Prometheus).
TEST(RenderPrometheusTest, MergedLabeledSnapshotsShareFamilyHeaders) {
  MetricsRegistry shard0, shard1;
  shard0.counter("engine.requests").Increment(2);
  shard1.counter("engine.requests").Increment(5);
  shard1.counter("engine.errors").Increment();  // Only shard 1 has it.

  std::string out = MetricsRegistry::RenderPrometheus(
      {{"shard=\"0\"", shard0.Snapshot()}, {"shard=\"1\"", shard1.Snapshot()}});
  const std::string expected =
      "# TYPE engine_errors_total counter\n"
      "engine_errors_total{shard=\"1\"} 1\n"
      "# TYPE engine_requests_total counter\n"
      "engine_requests_total{shard=\"0\"} 2\n"
      "engine_requests_total{shard=\"1\"} 5\n";
  EXPECT_EQ(out, expected);
}

TEST(RequestTraceTest, ToJsonCarriesShardIdAndCorpusEpoch) {
  RequestTrace trace;
  trace.request_id = 9;
  trace.shard_id = 2;
  trace.corpus_epoch = 5;
  trace.target_id = "p1";
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"shard_id\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"corpus_epoch\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"request_id\":9"), std::string::npos);
}

}  // namespace
}  // namespace comparesets
