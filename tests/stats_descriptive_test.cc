#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace comparesets {
namespace {

TEST(MeanTest, BasicsAndEmpty) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({-1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
}

TEST(VarianceTest, KnownValue) {
  // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} = 32/7.
  std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(SampleVariance(values), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(SampleStdDev(values), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(VarianceTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(SampleVariance({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({2.0, 2.0, 2.0}), 0.0);
}

TEST(StandardErrorTest, ScalesWithSqrtN) {
  std::vector<double> small = {1.0, 3.0};
  std::vector<double> big;
  for (int i = 0; i < 8; ++i) {
    big.push_back(1.0);
    big.push_back(3.0);
  }
  EXPECT_GT(StandardError(small), StandardError(big));
  EXPECT_DOUBLE_EQ(StandardError({1.0}), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> values = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.75), 7.5);
}

TEST(QuantileTest, SingleValue) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.3), 7.0);
}

TEST(PearsonTest, PerfectCorrelations) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
}

TEST(PearsonTest, UncorrelatedNearZero) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {1.0, -1.0, 1.0, -1.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), -0.4472, 1e-3);
}

}  // namespace
}  // namespace comparesets
