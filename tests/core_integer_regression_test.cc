#include "core/integer_regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "eval/objective.h"
#include "test_fixtures.h"

namespace comparesets {
namespace {

// --- RoundToIntegerCounts ----------------------------------------------------

TEST(RoundingTest, ExactProportionsRecovered) {
  // x = (1/3, 1/3, 1/3) with caps 2 each, max_total 3 => ν = (1, 1, 1).
  Vector x = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  std::vector<int> nu = RoundToIntegerCounts(x, {2, 2, 2}, 3);
  EXPECT_EQ(nu, (std::vector<int>{1, 1, 1}));
}

TEST(RoundingTest, SingleMassConcentrates) {
  Vector x = {0.0, 5.0, 0.0};
  std::vector<int> nu = RoundToIntegerCounts(x, {3, 3, 3}, 4);
  EXPECT_EQ(nu[0], 0);
  EXPECT_EQ(nu[2], 0);
  EXPECT_GE(nu[1], 1);
}

TEST(RoundingTest, CapsRespected) {
  Vector x = {10.0, 0.1};
  std::vector<int> nu = RoundToIntegerCounts(x, {1, 5}, 6);
  EXPECT_LE(nu[0], 1);
  EXPECT_LE(nu[1], 5);
}

TEST(RoundingTest, TotalBudgetRespected) {
  Vector x = {1.0, 1.0, 1.0, 1.0};
  for (size_t m = 1; m <= 6; ++m) {
    std::vector<int> nu = RoundToIntegerCounts(x, {5, 5, 5, 5}, m);
    int total = 0;
    for (int v : nu) total += v;
    EXPECT_LE(total, static_cast<int>(m));
    EXPECT_GE(total, 1);
  }
}

TEST(RoundingTest, ZeroVectorGivesZeroCounts) {
  std::vector<int> nu = RoundToIntegerCounts(Vector{0.0, 0.0}, {2, 2}, 3);
  EXPECT_EQ(nu, (std::vector<int>{0, 0}));
}

TEST(RoundingTest, SkewedProportionsFavorHeavyGroup) {
  Vector x = {0.75, 0.25};
  std::vector<int> nu = RoundToIntegerCounts(x, {10, 10}, 4);
  EXPECT_EQ(nu, (std::vector<int>{3, 1}));
}

TEST(RoundingTest, NormalizedDistanceOptimalOnSmallCase) {
  // Exhaustive check: returned ν is no worse than any feasible ν.
  Vector x = {0.6, 0.4};
  std::vector<int> caps = {2, 2};
  size_t m = 3;
  std::vector<int> best = RoundToIntegerCounts(x, caps, m);
  auto distance = [&](const std::vector<int>& nu) {
    double total = nu[0] + nu[1];
    if (total == 0) return 1e18;
    return std::fabs(nu[0] / total - 0.6) + std::fabs(nu[1] / total - 0.4);
  };
  for (int a = 0; a <= caps[0]; ++a) {
    for (int b = 0; b <= caps[1]; ++b) {
      if (a + b == 0 || a + b > static_cast<int>(m)) continue;
      EXPECT_LE(distance(best), distance({a, b}) + 1e-12)
          << "beaten by (" << a << "," << b << ")";
    }
  }
}

// --- SolveIntegerRegression --------------------------------------------------

class IntegerRegressionTest : public ::testing::Test {
 protected:
  IntegerRegressionTest()
      : corpus_(testing::WorkingExampleCorpus()),
        instance_(testing::WorkingExampleInstance(corpus_)),
        vectors_(BuildInstanceVectors(OpinionModel::Binary(5), instance_)) {}

  Corpus corpus_;
  ProblemInstance instance_;
  InstanceVectors vectors_;
};

TEST_F(IntegerRegressionTest, WorkingExampleAchievesZeroCost) {
  // Working Example 2: with m = 3 the optimal triple reproduces τ1 and Γ
  // exactly, so Integer-Regression must find a zero-cost selection.
  DesignSystem system = BuildCompareSetsSystem(vectors_, 0, 1.0);
  auto cost = [&](const Selection& s) {
    return ItemCost(vectors_, 0, s, 1.0);
  };
  auto result = SolveIntegerRegression(system, 3, cost);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().cost, 0.0, 1e-12);
  EXPECT_EQ(result.value().selection.size(), 3u);
}

TEST_F(IntegerRegressionTest, WorkingExampleSelectionIsProportionalTriple) {
  DesignSystem system = BuildCompareSetsSystem(vectors_, 0, 1.0);
  auto cost = [&](const Selection& s) {
    return ItemCost(vectors_, 0, s, 1.0);
  };
  auto result = SolveIntegerRegression(system, 3, cost);
  ASSERT_TRUE(result.ok());
  // The winning triple must contain one review of each signature class:
  // {b+,l+,q+}, {b−,l−,q−}, {b−}. Signature classes are {r1,r4}, {r2,r5},
  // {r3,r6} = indices {0,3}, {1,4}, {2,5}.
  std::vector<int> class_of = {0, 1, 2, 0, 1, 2};
  std::vector<int> seen(3, 0);
  for (size_t index : result.value().selection) {
    ASSERT_LT(index, 6u);
    ++seen[class_of[index]];
  }
  EXPECT_EQ(seen, (std::vector<int>{1, 1, 1}));
}

TEST_F(IntegerRegressionTest, BudgetOfOneSelectsSingleReview) {
  DesignSystem system = BuildCompareSetsSystem(vectors_, 0, 1.0);
  auto cost = [&](const Selection& s) {
    return ItemCost(vectors_, 0, s, 1.0);
  };
  auto result = SolveIntegerRegression(system, 1, cost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().selection.size(), 1u);
}

TEST_F(IntegerRegressionTest, LargerBudgetNeverHurtsOnWorkingExample) {
  DesignSystem system = BuildCompareSetsSystem(vectors_, 0, 1.0);
  auto cost = [&](const Selection& s) {
    return ItemCost(vectors_, 0, s, 1.0);
  };
  double previous = 1e18;
  for (size_t m = 1; m <= 6; ++m) {
    auto result = SolveIntegerRegression(system, m, cost);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value().cost, previous + 1e-9) << "m=" << m;
    previous = result.value().cost;
  }
}

TEST_F(IntegerRegressionTest, SelectionIndicesAreValidAndDistinct) {
  DesignSystem system = BuildCompareSetsSystem(vectors_, 1, 1.0);
  auto cost = [&](const Selection& s) {
    return ItemCost(vectors_, 1, s, 1.0);
  };
  auto result = SolveIntegerRegression(system, 3, cost);
  ASSERT_TRUE(result.ok());
  const Selection& selection = result.value().selection;
  std::set<size_t> unique(selection.begin(), selection.end());
  EXPECT_EQ(unique.size(), selection.size());
  for (size_t index : selection) {
    EXPECT_LT(index, instance_.items[1]->reviews.size());
  }
}

TEST_F(IntegerRegressionTest, InvalidInputsRejected) {
  DesignSystem system = BuildCompareSetsSystem(vectors_, 0, 1.0);
  auto cost = [](const Selection&) { return 0.0; };
  EXPECT_FALSE(SolveIntegerRegression(system, 0, cost).ok());
  DesignSystem empty;
  EXPECT_FALSE(SolveIntegerRegression(empty, 3, cost).ok());
}

TEST_F(IntegerRegressionTest, CostCallbackDrivesChoice) {
  // With an adversarial cost that prefers review 5 alone, the engine must
  // respect the callback when comparing candidates it generates.
  DesignSystem system = BuildCompareSetsSystem(vectors_, 0, 1.0);
  auto contrarian_cost = [&](const Selection& s) {
    return s.size() == 1 && s[0] == 5 ? 0.0 : 1.0;
  };
  auto result = SolveIntegerRegression(system, 3, contrarian_cost);
  ASSERT_TRUE(result.ok());
  // The engine may or may not generate {5}, but whatever it returns must
  // be the best-cost candidate it evaluated; cost can never exceed the
  // cost of every generated candidate. Sanity: cost is 0 or 1.
  EXPECT_TRUE(result.value().cost == 0.0 || result.value().cost == 1.0);
}

}  // namespace
}  // namespace comparesets
