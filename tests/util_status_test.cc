#include "util/status.h"

#include <gtest/gtest.h>

namespace comparesets {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::IOError("disk full");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(status.message(), "disk full");
  EXPECT_EQ(status.ToString(), "io error: disk full");
}

TEST(StatusTest, AllFactoryFunctionsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, CoversEveryCode) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimeout), "timeout");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "parse error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "deadline exceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "resource exhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).ValueOrDie();
  EXPECT_EQ(value, "payload");
}

TEST(ResultTest, OkStatusConversionBecomesInternalError) {
  Result<int> result = Status::OK();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

Result<int> FailingFunction() { return Status::OutOfRange("nope"); }

Result<int> PropagatingFunction() {
  COMPARESETS_ASSIGN_OR_RETURN(int v, FailingFunction());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  Result<int> result = PropagatingFunction();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

Result<int> SucceedingFunction() { return 10; }

Result<int> PropagatingSuccess() {
  COMPARESETS_ASSIGN_OR_RETURN(int v, SucceedingFunction());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnPassesValuesThrough) {
  Result<int> result = PropagatingSuccess();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 11);
}

Status ReturnNotOkHelper(bool fail) {
  COMPARESETS_RETURN_NOT_OK(fail ? Status::IOError("bad") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(ReturnNotOkHelper(false).ok());
  EXPECT_EQ(ReturnNotOkHelper(true).code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace comparesets
