#include "nlp/annotator.h"

#include <gtest/gtest.h>

namespace comparesets {
namespace {

class AnnotatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // LightStem maps "battery"->"battery", "lens"->"len" (length-4 's'
    // rule keeps "lens" as "len"+s? no: "lens" length 4, ends in 's',
    // not "ss" => "len"). Register stemmed surface forms accordingly.
    lexicon_.AddTerm("battery", "battery").CheckOK();
    lexicon_.AddTerm("len", "lens").CheckOK();
    lexicon_.AddTerm("screen", "screen").CheckOK();
    annotator_ = std::make_unique<ReviewAnnotator>(
        &lexicon_, &SentimentLexicon::Default(), &catalog_);
  }

  AspectLexicon lexicon_;
  AspectCatalog catalog_;
  std::unique_ptr<ReviewAnnotator> annotator_;
};

TEST_F(AnnotatorTest, PositiveSentence) {
  auto mentions = annotator_->Annotate("The battery is great.");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(catalog_.Name(mentions[0].aspect), "battery");
  EXPECT_EQ(mentions[0].polarity, Polarity::kPositive);
  EXPECT_GT(mentions[0].strength, 0.0);
}

TEST_F(AnnotatorTest, NegativeSentence) {
  auto mentions = annotator_->Annotate("The battery is terrible.");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].polarity, Polarity::kNegative);
}

TEST_F(AnnotatorTest, NegationFlipsPolarity) {
  auto mentions = annotator_->Annotate("The battery is not great.");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].polarity, Polarity::kNegative);
}

TEST_F(AnnotatorTest, DoubleNegationCancels) {
  // "never not" within the window flips twice.
  auto mentions = annotator_->Annotate("The battery is never not great.");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].polarity, Polarity::kPositive);
}

TEST_F(AnnotatorTest, NoOpinionWordsYieldNeutral) {
  auto mentions = annotator_->Annotate("The battery has a certain color.");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].polarity, Polarity::kNeutral);
}

TEST_F(AnnotatorTest, SentenceScopedAssociation) {
  auto mentions = annotator_->Annotate(
      "The battery is great. The screen is terrible.");
  ASSERT_EQ(mentions.size(), 2u);
  for (const OpinionMention& mention : mentions) {
    if (catalog_.Name(mention.aspect) == "battery") {
      EXPECT_EQ(mention.polarity, Polarity::kPositive);
    } else {
      EXPECT_EQ(catalog_.Name(mention.aspect), "screen");
      EXPECT_EQ(mention.polarity, Polarity::kNegative);
    }
  }
}

TEST_F(AnnotatorTest, MultipleAspectsShareSentencePolarity) {
  auto mentions = annotator_->Annotate("The battery and lens are excellent.");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].polarity, Polarity::kPositive);
  EXPECT_EQ(mentions[1].polarity, Polarity::kPositive);
}

TEST_F(AnnotatorTest, DuplicateAspectPolarityCollapsed) {
  auto mentions = annotator_->Annotate(
      "The battery is great. Really, the battery is excellent.");
  ASSERT_EQ(mentions.size(), 1u);  // (battery, +) mentioned once.
}

TEST_F(AnnotatorTest, SameAspectDifferentPolaritiesKept) {
  auto mentions = annotator_->Annotate(
      "The battery is great. But later the battery was terrible.");
  EXPECT_EQ(mentions.size(), 2u);
}

TEST_F(AnnotatorTest, UnknownAspectIgnored) {
  auto mentions = annotator_->Annotate("The zipper is great.");
  EXPECT_TRUE(mentions.empty());
}

TEST_F(AnnotatorTest, EmptyTextYieldsNothing) {
  EXPECT_TRUE(annotator_->Annotate("").empty());
}

TEST_F(AnnotatorTest, StemmedSurfaceFormsMatch) {
  // "batteries" stems to "battery".
  auto mentions = annotator_->Annotate("The batteries are great.");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(catalog_.Name(mentions[0].aspect), "battery");
}

TEST_F(AnnotatorTest, CatalogInternedOnce) {
  annotator_->Annotate("The battery is great.");
  annotator_->Annotate("The battery is terrible.");
  EXPECT_EQ(catalog_.size(), 1u);
}

}  // namespace
}  // namespace comparesets
