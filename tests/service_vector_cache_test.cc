#include "service/vector_cache.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace comparesets {
namespace {

class VectorCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto config = DefaultConfig("Cellphone", 40);
    ASSERT_TRUE(config.ok());
    auto corpus = GenerateCorpus(config.value());
    ASSERT_TRUE(corpus.ok());
    auto indexed = IndexedCorpus::Build(std::move(corpus).value());
    ASSERT_TRUE(indexed.ok()) << indexed.status();
    corpus_ = indexed.value();
    ASSERT_GE(corpus_->num_instances(), 3u);
  }

  /// A prepared bundle for the i-th enumerated instance.
  std::shared_ptr<const PreparedInstance> Bundle(size_t i) {
    OpinionModel model = OpinionModel::Binary(corpus_->num_aspects());
    return PreparedInstance::Create(corpus_, corpus_->instances()[i], model);
  }

  std::shared_ptr<const IndexedCorpus> corpus_;
};

TEST_F(VectorCacheTest, PreparedInstanceWiresVectorsToOwnedInstance) {
  auto bundle = Bundle(0);
  EXPECT_EQ(bundle->vectors.instance, &bundle->instance);
  EXPECT_EQ(bundle->vectors.num_items(), bundle->instance.num_items());
  EXPECT_GT(bundle->vectors.ApproxMemoryBytes(), 0u);
}

TEST_F(VectorCacheTest, HitAndMissAccounting) {
  VectorCache cache(4);
  EXPECT_EQ(cache.Get("a"), nullptr);
  auto bundle = Bundle(0);
  cache.Put("a", bundle);
  EXPECT_EQ(cache.Get("a"), bundle);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_EQ(cache.Get("a"), bundle);

  VectorCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.approx_bytes, 0u);
}

TEST_F(VectorCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  VectorCache cache(2);
  cache.Put("a", Bundle(0));
  cache.Put("b", Bundle(1));
  // Touch "a" so "b" becomes the LRU entry.
  EXPECT_NE(cache.Get("a"), nullptr);
  cache.Put("c", Bundle(2));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_NE(cache.Get("a"), nullptr);  // Survived (recently used).
  EXPECT_EQ(cache.Get("b"), nullptr);  // Evicted.
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST_F(VectorCacheTest, PutReplacesExistingKeyWithoutEviction) {
  VectorCache cache(2);
  cache.Put("a", Bundle(0));
  auto replacement = Bundle(1);
  cache.Put("a", replacement);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Stats().evictions, 0u);
  EXPECT_EQ(cache.Get("a"), replacement);
}

TEST_F(VectorCacheTest, CapacityIsAtLeastOne) {
  VectorCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.Put("a", Bundle(0));
  cache.Put("b", Bundle(1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(VectorCacheTest, ClearDropsAllEntriesAndKeepsCounters) {
  VectorCache cache(4);
  cache.Put("a", Bundle(0));
  cache.Put("b", Bundle(1));
  EXPECT_NE(cache.Get("a"), nullptr);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  // No stale entry survives the swap: both lookups miss now.
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  VectorCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.approx_bytes, 0u);
}

TEST_F(VectorCacheTest, EvictedEntryStaysAliveForHolders) {
  VectorCache cache(1);
  auto bundle = Bundle(0);
  cache.Put("a", bundle);
  auto held = cache.Get("a");
  cache.Put("b", Bundle(1));  // Evicts "a".
  ASSERT_NE(held, nullptr);
  // The held bundle is still fully usable after eviction.
  EXPECT_EQ(held->vectors.instance, &held->instance);
  EXPECT_GT(held->vectors.num_items(), 0u);
}

}  // namespace
}  // namespace comparesets
