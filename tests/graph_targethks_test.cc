#include <gtest/gtest.h>

#include <algorithm>

#include "graph/targethks_baselines.h"
#include "graph/targethks_exact.h"
#include "graph/targethks_greedy.h"
#include "util/rng.h"

namespace comparesets {
namespace {

/// Figure-4-style graph: the globally heaviest triangle {1, 4, 5} (weight
/// 26.5) excludes the target, while the best target-containing triangle
/// {0, 3, 5} weighs 25.4 — TargetHkS must pick the latter.
SimilarityGraph Figure4Graph() {
  SimilarityGraph graph(6);
  graph.set_weight(0, 3, 9.0);
  graph.set_weight(0, 5, 8.0);
  graph.set_weight(3, 5, 8.4);   // {0,3,5} = 25.4.
  graph.set_weight(1, 4, 9.0);
  graph.set_weight(4, 5, 9.0);
  graph.set_weight(1, 5, 8.5);   // {1,4,5} = 26.5.
  graph.set_weight(0, 1, 2.0);
  graph.set_weight(0, 2, 1.5);
  graph.set_weight(0, 4, 1.0);
  graph.set_weight(1, 2, 2.0);
  graph.set_weight(1, 3, 0.5);
  graph.set_weight(2, 3, 1.0);
  graph.set_weight(2, 4, 0.5);
  graph.set_weight(2, 5, 1.0);
  graph.set_weight(3, 4, 0.5);
  return graph;
}

SimilarityGraph RandomGraph(size_t n, Rng* rng) {
  SimilarityGraph graph(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      graph.set_weight(i, j, rng->UniformDouble(0.0, 10.0));
    }
  }
  return graph;
}

TEST(TargetHksExactTest, Figure4TargetConstrainedOptimum) {
  SimilarityGraph graph = Figure4Graph();
  auto result = SolveTargetHksExact(graph, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().proven_optimal);
  EXPECT_EQ(result.value().vertices, (std::vector<size_t>{0, 3, 5}));
  EXPECT_NEAR(result.value().weight, 25.4, 1e-9);
}

TEST(TargetHksExactTest, Figure4UnconstrainedOptimumDiffers) {
  // Solving with every vertex as target recovers the HkS optimum
  // ({1, 4, 5}, weight 26.5), as the paper notes in §3.1.
  SimilarityGraph graph = Figure4Graph();
  double best = 0.0;
  // Relabel so each vertex becomes vertex 0 in turn.
  for (size_t target = 0; target < 6; ++target) {
    SimilarityGraph relabeled(6);
    auto map = [&](size_t v) { return v == 0 ? target : (v == target ? 0u : v); };
    for (size_t i = 0; i < 6; ++i) {
      for (size_t j = i + 1; j < 6; ++j) {
        relabeled.set_weight(i, j, graph.weight(map(i), map(j)));
      }
    }
    auto result = SolveTargetHksExact(relabeled, 3);
    ASSERT_TRUE(result.ok());
    best = std::max(best, result.value().weight);
  }
  EXPECT_NEAR(best, 26.5, 1e-9);
}

TEST(TargetHksExactTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 5 + trial % 8;
    SimilarityGraph graph = RandomGraph(n, &rng);
    for (size_t k = 2; k <= std::min<size_t>(n, 5); ++k) {
      auto exact = SolveTargetHksExact(graph, k);
      auto brute = SolveTargetHksBruteForce(graph, k);
      ASSERT_TRUE(exact.ok());
      ASSERT_TRUE(brute.ok());
      EXPECT_NEAR(exact.value().weight, brute.value().weight, 1e-9)
          << "trial " << trial << " n=" << n << " k=" << k;
      EXPECT_TRUE(exact.value().proven_optimal);
    }
  }
}

TEST(TargetHksExactTest, TrivialCases) {
  Rng rng(3);
  SimilarityGraph graph = RandomGraph(6, &rng);
  auto k1 = SolveTargetHksExact(graph, 1);
  ASSERT_TRUE(k1.ok());
  EXPECT_EQ(k1.value().vertices, (std::vector<size_t>{0}));
  EXPECT_DOUBLE_EQ(k1.value().weight, 0.0);

  auto kn = SolveTargetHksExact(graph, 6);
  ASSERT_TRUE(kn.ok());
  EXPECT_EQ(kn.value().vertices.size(), 6u);
  std::vector<size_t> all = {0, 1, 2, 3, 4, 5};
  EXPECT_NEAR(kn.value().weight, graph.SubsetWeight(all), 1e-9);
}

TEST(TargetHksExactTest, InvalidArgumentsRejected) {
  SimilarityGraph graph(4);
  EXPECT_FALSE(SolveTargetHksExact(graph, 0).ok());
  EXPECT_FALSE(SolveTargetHksExact(graph, 5).ok());
  EXPECT_FALSE(SolveTargetHksExact(SimilarityGraph(0), 1).ok());
}

TEST(TargetHksExactTest, TimeLimitReturnsIncumbent) {
  Rng rng(5);
  SimilarityGraph graph = RandomGraph(24, &rng);
  ExactSolverOptions options;
  options.time_limit_seconds = 1e-9;  // Expires immediately.
  auto result = SolveTargetHksExact(graph, 8, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().vertices.size(), 8u);
  EXPECT_EQ(result.value().vertices[0], 0u);
  EXPECT_GT(result.value().weight, 0.0);  // Greedy incumbent, not empty.
}

TEST(TargetHksGreedyTest, AlwaysContainsTargetAndRightSize) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    SimilarityGraph graph = RandomGraph(10, &rng);
    for (size_t k = 1; k <= 10; ++k) {
      auto result = SolveTargetHksGreedy(graph, k);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result.value().vertices.size(), k);
      EXPECT_EQ(result.value().vertices[0], 0u);  // Sorted, 0 included.
      EXPECT_NEAR(result.value().weight,
                  graph.SubsetWeight(result.value().vertices), 1e-9);
    }
  }
}

TEST(TargetHksGreedyTest, CloseToOptimalOnRandomGraphs) {
  // The paper's Table 5 observes greedy within a tiny gap of the ILP;
  // on random graphs demand it is never catastrophically bad.
  Rng rng(11);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 25; ++trial) {
    SimilarityGraph graph = RandomGraph(9, &rng);
    auto exact = SolveTargetHksExact(graph, 4);
    auto greedy = SolveTargetHksGreedy(graph, 4);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_LE(greedy.value().weight, exact.value().weight + 1e-9);
    if (exact.value().weight > 0) {
      worst_ratio = std::min(worst_ratio,
                             greedy.value().weight / exact.value().weight);
    }
  }
  EXPECT_GT(worst_ratio, 0.75);
}

TEST(TargetHksGreedyTest, FirstPickIsHeaviestTargetEdge) {
  SimilarityGraph graph = Figure4Graph();
  auto result = SolveTargetHksGreedy(graph, 2);
  ASSERT_TRUE(result.ok());
  // Heaviest edge from target 0 is (0,3) = 9.
  EXPECT_EQ(result.value().vertices, (std::vector<size_t>{0, 3}));
  EXPECT_NEAR(result.value().weight, 9.0, 1e-12);
}

TEST(TargetHksRandomTest, ContainsTargetAndDeterministicPerSeed) {
  Rng rng(13);
  SimilarityGraph graph = RandomGraph(12, &rng);
  auto a = SolveTargetHksRandom(graph, 5, 42);
  auto b = SolveTargetHksRandom(graph, 5, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().vertices, b.value().vertices);
  EXPECT_EQ(a.value().vertices.size(), 5u);
  EXPECT_EQ(a.value().vertices[0], 0u);
}

TEST(TargetHksRandomTest, NeverBeatsExact) {
  Rng rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    SimilarityGraph graph = RandomGraph(10, &rng);
    auto exact = SolveTargetHksExact(graph, 4);
    auto random = SolveTargetHksRandom(graph, 4, trial);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(random.ok());
    EXPECT_LE(random.value().weight, exact.value().weight + 1e-9);
  }
}

TEST(TopKSimilarityTest, PicksLargestTargetEdges) {
  SimilarityGraph graph = Figure4Graph();
  auto result = SolveTopKSimilarity(graph, 3);
  ASSERT_TRUE(result.ok());
  // Largest target edges: (0,3)=9 and (0,5)=8.
  EXPECT_EQ(result.value().vertices, (std::vector<size_t>{0, 3, 5}));
}

TEST(TopKSimilarityTest, NeverBeatsExact) {
  Rng rng(19);
  for (int trial = 0; trial < 15; ++trial) {
    SimilarityGraph graph = RandomGraph(11, &rng);
    auto exact = SolveTargetHksExact(graph, 5);
    auto topk = SolveTopKSimilarity(graph, 5);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(topk.ok());
    EXPECT_LE(topk.value().weight, exact.value().weight + 1e-9);
  }
}

TEST(PeelTest, KeepsTargetAndRightSize) {
  Rng rng(23);
  SimilarityGraph graph = RandomGraph(12, &rng);
  for (size_t k : {1u, 3u, 6u, 12u}) {
    auto result = SolveTargetHksPeel(graph, k);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().vertices.size(), k);
    EXPECT_EQ(result.value().vertices[0], 0u);
  }
}

TEST(PeelTest, NeverBeatsExact) {
  Rng rng(29);
  for (int trial = 0; trial < 15; ++trial) {
    SimilarityGraph graph = RandomGraph(10, &rng);
    auto exact = SolveTargetHksExact(graph, 4);
    auto peel = SolveTargetHksPeel(graph, 4);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(peel.ok());
    EXPECT_LE(peel.value().weight, exact.value().weight + 1e-9);
  }
}

TEST(BruteForceTest, HandlesK1AndKn) {
  Rng rng(31);
  SimilarityGraph graph = RandomGraph(5, &rng);
  auto k1 = SolveTargetHksBruteForce(graph, 1);
  ASSERT_TRUE(k1.ok());
  EXPECT_EQ(k1.value().vertices, (std::vector<size_t>{0}));
  auto kn = SolveTargetHksBruteForce(graph, 5);
  ASSERT_TRUE(kn.ok());
  EXPECT_EQ(kn.value().vertices.size(), 5u);
}

}  // namespace
}  // namespace comparesets
