#include <gtest/gtest.h>

#include <set>

#include "core/compare_sets.h"
#include "core/compare_sets_plus.h"
#include "core/crs.h"
#include "core/greedy_selector.h"
#include "core/random_selector.h"
#include "core/selector.h"
#include "eval/objective.h"
#include "test_fixtures.h"

namespace comparesets {
namespace {

class SelectorsTest : public ::testing::Test {
 protected:
  SelectorsTest()
      : corpus_(testing::WorkingExampleCorpus()),
        instance_(testing::WorkingExampleInstance(corpus_)),
        vectors_(BuildInstanceVectors(OpinionModel::Binary(5), instance_)) {}

  static SelectorOptions Options(size_t m = 3) {
    SelectorOptions options;
    options.m = m;
    options.lambda = 1.0;
    options.mu = 0.1;
    return options;
  }

  void ExpectWellFormed(const SelectionResult& result, size_t m) {
    ASSERT_EQ(result.selections.size(), vectors_.num_items());
    for (size_t i = 0; i < result.selections.size(); ++i) {
      const Selection& selection = result.selections[i];
      EXPECT_GE(selection.size(), 1u) << "item " << i;
      EXPECT_LE(selection.size(), m) << "item " << i;
      std::set<size_t> unique(selection.begin(), selection.end());
      EXPECT_EQ(unique.size(), selection.size()) << "item " << i;
      for (size_t index : selection) {
        EXPECT_LT(index, vectors_.num_reviews(i)) << "item " << i;
      }
    }
  }

  Corpus corpus_;
  ProblemInstance instance_;
  InstanceVectors vectors_;
};

TEST_F(SelectorsTest, EverySelectorProducesWellFormedSelections) {
  for (const std::string& name : AllSelectorNames()) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok()) << name;
    auto result = selector.value()->Select(vectors_, Options());
    ASSERT_TRUE(result.ok()) << name;
    ExpectWellFormed(result.value(), 3);
  }
}

TEST_F(SelectorsTest, FactoryRejectsUnknownNames) {
  EXPECT_FALSE(MakeSelector("NotASelector").ok());
  EXPECT_EQ(MakeSelector("NotASelector").status().code(),
            StatusCode::kNotFound);
}

TEST_F(SelectorsTest, SelectorNamesMatchFactory) {
  for (const std::string& name : AllSelectorNames()) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok());
    EXPECT_EQ(selector.value()->name(), name);
  }
}

TEST_F(SelectorsTest, CompareSetsAchievesZeroCostOnWorkingExample) {
  CompareSetsSelector selector;
  auto result = selector.Select(vectors_, Options());
  ASSERT_TRUE(result.ok());
  // Item 0 has an exactly-proportional triple: Eq. 3 cost must be 0.
  EXPECT_NEAR(ItemCost(vectors_, 0, result.value().selections[0], 1.0), 0.0,
              1e-12);
}

TEST_F(SelectorsTest, CompareSetsPlusObjectiveNotWorseThanCompareSets) {
  // Algorithm 1 starts from the CompaReSetS solution and only accepts
  // improvements, so Eq. 5 can never get worse.
  CompareSetsSelector base;
  CompareSetsPlusSelector plus;
  SelectorOptions options = Options();
  auto base_result = base.Select(vectors_, options);
  auto plus_result = plus.Select(vectors_, options);
  ASSERT_TRUE(base_result.ok());
  ASSERT_TRUE(plus_result.ok());
  EXPECT_LE(plus_result.value().objective,
            base_result.value().objective + 1e-9);
}

TEST_F(SelectorsTest, ExtraSyncRoundsMonotone) {
  CompareSetsPlusSelector plus;
  SelectorOptions options = Options();
  auto one_pass = plus.Select(vectors_, options);
  options.extra_sync_rounds = 3;
  auto many_pass = plus.Select(vectors_, options);
  ASSERT_TRUE(one_pass.ok());
  ASSERT_TRUE(many_pass.ok());
  EXPECT_LE(many_pass.value().objective, one_pass.value().objective + 1e-9);
}

TEST_F(SelectorsTest, ReportedObjectiveMatchesRecomputation) {
  for (const std::string& name : AllSelectorNames()) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok());
    SelectorOptions options = Options();
    auto result = selector.value()->Select(vectors_, options);
    ASSERT_TRUE(result.ok()) << name;
    double recomputed = CompareSetsPlusObjective(
        vectors_, result.value().selections, options.lambda, options.mu);
    EXPECT_NEAR(result.value().objective, recomputed, 1e-9) << name;
  }
}

TEST_F(SelectorsTest, RandomSelectorDeterministicPerSeed) {
  RandomSelector selector;
  SelectorOptions options = Options();
  options.seed = 99;
  auto a = selector.Select(vectors_, options);
  auto b = selector.Select(vectors_, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().selections, b.value().selections);

  options.seed = 100;
  auto c = selector.Select(vectors_, options);
  ASSERT_TRUE(c.ok());
  // Different seed will (almost surely) change at least one selection;
  // tolerate equality but confirm the code path differs via objective.
  // (With 3 items × C(5..6,3) subsets, collision odds are tiny.)
  EXPECT_TRUE(a.value().selections != c.value().selections ||
              a.value().objective == c.value().objective);
}

TEST_F(SelectorsTest, RandomSelectorTakesAllWhenFewerThanM) {
  RandomSelector selector;
  auto result = selector.Select(vectors_, Options(100));
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < vectors_.num_items(); ++i) {
    EXPECT_EQ(result.value().selections[i].size(), vectors_.num_reviews(i));
  }
}

TEST_F(SelectorsTest, GreedyImprovesOverFirstPickOrStops) {
  CompareSetsGreedySelector selector;
  auto m1 = selector.Select(vectors_, Options(1));
  auto m3 = selector.Select(vectors_, Options(3));
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m3.ok());
  for (size_t i = 0; i < vectors_.num_items(); ++i) {
    double cost1 = ItemCost(vectors_, 0, m1.value().selections[0], 1.0);
    double cost3 = ItemCost(vectors_, 0, m3.value().selections[0], 1.0);
    EXPECT_LE(cost3, cost1 + 1e-9) << "item " << i;
  }
}

TEST_F(SelectorsTest, GreedyFirstPickIsBestSingleton) {
  CompareSetsGreedySelector selector;
  auto result = selector.Select(vectors_, Options(1));
  ASSERT_TRUE(result.ok());
  double chosen = ItemCost(vectors_, 0, result.value().selections[0], 1.0);
  for (size_t j = 0; j < vectors_.num_reviews(0); ++j) {
    EXPECT_LE(chosen, ItemCost(vectors_, 0, {j}, 1.0) + 1e-12);
  }
}

TEST_F(SelectorsTest, CrsIgnoresAspectCoverage) {
  // Crs only matches τ_i; its item-0 opinion distance is minimal among
  // all selectors (it is the specialist for that term).
  CrsSelector crs;
  auto result = crs.Select(vectors_, Options());
  ASSERT_TRUE(result.ok());
  Vector pi = vectors_.OpinionOf(0, result.value().selections[0]);
  EXPECT_NEAR(SquaredDistance(vectors_.tau[0], pi), 0.0, 1e-12);
}

TEST_F(SelectorsTest, ZeroMRejectedByAllSelectors) {
  for (const std::string& name : AllSelectorNames()) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok());
    SelectorOptions options = Options(3);
    options.m = 0;
    EXPECT_FALSE(selector.value()->Select(vectors_, options).ok()) << name;
  }
}

TEST_F(SelectorsTest, SingleItemInstanceWorks) {
  // CompaReSetS+ degenerates to CompaReSetS for n = 1 (paper §2.2).
  ProblemInstance solo;
  solo.items = {corpus_.Find("p1")};
  InstanceVectors solo_vectors =
      BuildInstanceVectors(OpinionModel::Binary(5), solo);
  CompareSetsPlusSelector plus;
  auto result = plus.Select(solo_vectors, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().selections.size(), 1u);
  EXPECT_NEAR(ItemCost(solo_vectors, 0, result.value().selections[0], 1.0),
              0.0, 1e-12);
}

}  // namespace
}  // namespace comparesets
