#include "linalg/vector.h"

#include <gtest/gtest.h>

#include <cmath>

namespace comparesets {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector v(3, 2.0);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  v[1] = -1.0;
  EXPECT_DOUBLE_EQ(v[1], -1.0);

  Vector w = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(w[2], 3.0);
  EXPECT_TRUE(Vector().empty());
}

TEST(VectorTest, Norms) {
  Vector v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.Sum(), -1.0);
  EXPECT_DOUBLE_EQ(v.NormL1(), 7.0);
  EXPECT_DOUBLE_EQ(v.NormL2(), 5.0);
  EXPECT_DOUBLE_EQ(v.NormInf(), 4.0);
  EXPECT_DOUBLE_EQ(v.Max(), 3.0);
  EXPECT_DOUBLE_EQ(Vector().Max(), 0.0);
}

TEST(VectorTest, DotProduct) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 4.0 - 10.0 + 18.0);
}

TEST(VectorTest, AxpyAndScale) {
  Vector a = {1.0, 2.0};
  Vector b = {10.0, 20.0};
  a.Axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a[0], 6.0);
  EXPECT_DOUBLE_EQ(a[1], 12.0);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a[0], 12.0);
}

TEST(VectorTest, ArithmeticOperators) {
  Vector a = {1.0, 2.0};
  Vector b = {3.0, 5.0};
  EXPECT_TRUE((a + b).AlmostEquals(Vector{4.0, 7.0}));
  EXPECT_TRUE((b - a).AlmostEquals(Vector{2.0, 3.0}));
  EXPECT_TRUE((a * 3.0).AlmostEquals(Vector{3.0, 6.0}));
}

TEST(VectorTest, AppendAndAppendScaled) {
  Vector a = {1.0};
  a.Append(Vector{2.0, 3.0});
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[2], 3.0);
  a.AppendScaled(0.5, Vector{4.0});
  EXPECT_DOUBLE_EQ(a[3], 2.0);
}

TEST(VectorTest, AlmostEquals) {
  Vector a = {1.0, 2.0};
  EXPECT_TRUE(a.AlmostEquals(Vector{1.0 + 1e-12, 2.0}));
  EXPECT_FALSE(a.AlmostEquals(Vector{1.1, 2.0}));
  EXPECT_FALSE(a.AlmostEquals(Vector{1.0}));
}

TEST(SquaredDistanceTest, MatchesPaperEquation2) {
  // Δ(x, y) = Σ (x_i − y_i)².
  Vector x = {1.0, 0.0, 2.0};
  Vector y = {0.0, 0.0, -1.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(x, y), 1.0 + 0.0 + 9.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(x, x), 0.0);
}

TEST(SquaredDistanceTest, Symmetric) {
  Vector x = {0.3, -0.7, 2.2};
  Vector y = {1.1, 0.4, -0.9};
  EXPECT_DOUBLE_EQ(SquaredDistance(x, y), SquaredDistance(y, x));
}

TEST(CosineSimilarityTest, KnownValues) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1.0, 0.0}, {0.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({2.0, 0.0}, {5.0, 0.0}), 1.0);
  EXPECT_NEAR(CosineSimilarity({1.0, 1.0}, {1.0, 0.0}), 1.0 / std::sqrt(2.0),
              1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1.0, 0.0}, {-1.0, 0.0}), -1.0);
}

TEST(CosineSimilarityTest, ZeroVectorYieldsZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({0.0, 0.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0.0}, {0.0}), 0.0);
}

TEST(ConcatenateTest, JoinsInOrder) {
  Vector joined = Concatenate({1.0, 2.0}, {3.0});
  EXPECT_TRUE(joined.AlmostEquals(Vector{1.0, 2.0, 3.0}));
}

TEST(ConcatenateTest, WeightedConcatenationRealizesSquaredWeights) {
  // Δ([a; λb], [c; λd]) = Δ(a, c) + λ²Δ(b, d) — the identity behind
  // Eq. 4 of the paper.
  Vector a = {1.0, 2.0};
  Vector b = {0.5};
  Vector c = {0.0, 1.0};
  Vector d = {2.0};
  double lambda = 3.0;
  Vector left = a;
  left.AppendScaled(lambda, b);
  Vector right = c;
  right.AppendScaled(lambda, d);
  EXPECT_NEAR(SquaredDistance(left, right),
              SquaredDistance(a, c) + lambda * lambda * SquaredDistance(b, d),
              1e-12);
}

TEST(VectorTest, ToStringFormatsValues) {
  EXPECT_EQ((Vector{1.0, 0.5}).ToString(1), "[1.0, 0.5]");
  EXPECT_EQ(Vector().ToString(), "[]");
}

}  // namespace
}  // namespace comparesets
