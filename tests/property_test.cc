// Parameterized property sweeps across opinion models, budgets m, and
// selectors — the invariants every configuration must satisfy.

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <tuple>

#include "core/selector.h"
#include "eval/objective.h"
#include "eval/runner.h"
#include "graph/targethks_exact.h"
#include "graph/targethks_greedy.h"

namespace comparesets {
namespace {

// Shared miniature workload (built once; tests are read-only users).
const Workload& SharedWorkload() {
  static const Workload* kWorkload = [] {
    RunnerConfig config;
    config.category = "Clothing";
    config.num_products = 80;
    config.max_instances = 4;
    config.seed = 99;
    return new Workload(Workload::BuildSynthetic(config).ValueOrDie());
  }();
  return *kWorkload;
}

using SelectorParam = std::tuple<std::string, size_t>;  // (name, m).

class SelectorPropertyTest
    : public ::testing::TestWithParam<SelectorParam> {};

TEST_P(SelectorPropertyTest, SelectionsWellFormedForEveryConfiguration) {
  const auto& [name, m] = GetParam();
  auto selector = MakeSelector(name).ValueOrDie();
  SelectorOptions options;
  options.m = m;
  for (size_t i = 0; i < SharedWorkload().num_instances(); ++i) {
    const InstanceVectors& vectors = SharedWorkload().vectors()[i];
    auto result = selector->Select(vectors, options);
    ASSERT_TRUE(result.ok()) << name << " m=" << m;
    ASSERT_EQ(result.value().selections.size(), vectors.num_items());
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      const Selection& selection = result.value().selections[item];
      EXPECT_GE(selection.size(), 1u);
      EXPECT_LE(selection.size(), m);
      std::set<size_t> unique(selection.begin(), selection.end());
      EXPECT_EQ(unique.size(), selection.size());
      for (size_t index : selection) {
        EXPECT_LT(index, vectors.num_reviews(item));
      }
    }
    EXPECT_GE(result.value().objective, 0.0);
  }
}

TEST_P(SelectorPropertyTest, DeterministicAcrossRepeatedRuns) {
  const auto& [name, m] = GetParam();
  auto selector = MakeSelector(name).ValueOrDie();
  SelectorOptions options;
  options.m = m;
  const InstanceVectors& vectors = SharedWorkload().vectors()[0];
  auto first = selector->Select(vectors, options);
  auto second = selector->Select(vectors, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().selections, second.value().selections) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSelectorsAllBudgets, SelectorPropertyTest,
    ::testing::Combine(::testing::Values("Random", "Crs",
                                         "CompaReSetSGreedy", "CompaReSetS",
                                         "CompaReSetS+"),
                       ::testing::Values(1u, 3u, 5u, 10u)),
    [](const ::testing::TestParamInfo<SelectorParam>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '+') c = 'P';
      }
      return name + "_m" + std::to_string(std::get<1>(info.param));
    });

class OpinionModelPropertyTest
    : public ::testing::TestWithParam<OpinionDefinition> {};

TEST_P(OpinionModelPropertyTest, VectorsBoundedAndReconstructive) {
  OpinionDefinition definition = GetParam();
  const Corpus& corpus = SharedWorkload().corpus();
  OpinionModel model(definition, corpus.num_aspects());

  for (size_t p = 0; p < std::min<size_t>(corpus.num_products(), 25); ++p) {
    const Product& product = corpus.products()[p];
    ReviewSet all = AllReviews(product);
    Vector pi = model.OpinionVector(all);
    Vector phi = model.AspectVector(all);
    EXPECT_EQ(pi.size(), model.opinion_dims());
    EXPECT_EQ(phi.size(), corpus.num_aspects());
    for (size_t d = 0; d < pi.size(); ++d) {
      EXPECT_GE(pi[d], 0.0);
      EXPECT_LE(pi[d], 1.0 + 1e-12);
    }
    for (size_t d = 0; d < phi.size(); ++d) {
      EXPECT_GE(phi[d], 0.0);
      EXPECT_LE(phi[d], 1.0 + 1e-12);
    }
    // Identity reconstruction: selecting everything gives τ exactly.
    Selection everything(product.reviews.size());
    std::iota(everything.begin(), everything.end(), 0);
    Vector pi_again =
        model.OpinionVector(SelectReviews(product, everything));
    EXPECT_TRUE(pi_again.AlmostEquals(pi));
  }
}

TEST_P(OpinionModelPropertyTest, EndToEndSelectionWorks) {
  OpinionDefinition definition = GetParam();
  const Corpus& corpus = SharedWorkload().corpus();
  OpinionModel model(definition, corpus.num_aspects());
  InstanceVectors vectors =
      BuildInstanceVectors(model, SharedWorkload().instances()[0]);
  SelectorOptions options;
  options.m = 3;
  auto result = MakeSelector("CompaReSetS+").ValueOrDie()->Select(vectors,
                                                                  options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().selections.size(), vectors.num_items());
}

INSTANTIATE_TEST_SUITE_P(
    AllOpinionDefinitions, OpinionModelPropertyTest,
    ::testing::Values(OpinionDefinition::kBinary,
                      OpinionDefinition::kThreePolarity,
                      OpinionDefinition::kUnaryScale),
    [](const ::testing::TestParamInfo<OpinionDefinition>& info) {
      switch (info.param) {
        case OpinionDefinition::kBinary:
          return std::string("Binary");
        case OpinionDefinition::kThreePolarity:
          return std::string("ThreePolarity");
        case OpinionDefinition::kUnaryScale:
          return std::string("UnaryScale");
        case OpinionDefinition::kLearnedPreference:
          return std::string("LearnedPreference");
      }
      return std::string("Unknown");
    });

class TargetHksPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TargetHksPropertyTest, ExactDominatesHeuristicsAtEveryK) {
  size_t k = GetParam();
  SelectorOptions options;
  options.m = 3;
  auto run = RunSelector(*MakeSelector("CompaReSetS").ValueOrDie(),
                         SharedWorkload(), options);
  ASSERT_TRUE(run.ok());
  for (size_t i = 0; i < SharedWorkload().num_instances(); ++i) {
    const InstanceVectors& vectors = SharedWorkload().vectors()[i];
    SimilarityGraph graph = BuildSimilarityGraph(
        vectors, run.value().results[i].selections, 1.0, 0.1);
    if (graph.num_vertices() < k) continue;
    auto exact = SolveTargetHksExact(graph, k);
    auto greedy = SolveTargetHksGreedy(graph, k);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_LE(greedy.value().weight, exact.value().weight + 1e-9)
        << "instance " << i << " k=" << k;
    EXPECT_GE(greedy.value().weight, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, TargetHksPropertyTest,
                         ::testing::Values(2u, 3u, 5u, 8u));

}  // namespace
}  // namespace comparesets
