// The sharding regression oracle: a ShardRouter over N range shards
// must answer bit-identically to one SelectionEngine over the whole
// corpus. Shards hold exact slices of the same instance enumeration and
// every selector is a pure function of (vectors, options), so routing
// is pure dispatch — any divergence here means the partitioner changed
// instance content or the router changed request semantics.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "service/router.h"

namespace comparesets {
namespace {

std::shared_ptr<const IndexedCorpus> MakeCorpus(size_t products,
                                                uint64_t seed = 42) {
  auto config = DefaultConfig("Cellphone", products);
  config.status().CheckOK();
  config.value().seed = seed;
  auto corpus = GenerateCorpus(config.value());
  corpus.status().CheckOK();
  return IndexedCorpus::Build(std::move(corpus).value()).ValueOrDie();
}

void ExpectSameRouge(const RougeScore& got, const RougeScore& want) {
  EXPECT_EQ(got.precision, want.precision);
  EXPECT_EQ(got.recall, want.recall);
  EXPECT_EQ(got.f1, want.f1);
}

void ExpectSameTriple(const RougeTriple& got, const RougeTriple& want) {
  ExpectSameRouge(got.rouge1, want.rouge1);
  ExpectSameRouge(got.rouge2, want.rouge2);
  ExpectSameRouge(got.rougeL, want.rougeL);
}

/// Bit-for-bit payload equality, plus (by default) the cache flags — a
/// router must not just compute the same answer but hit the same warm
/// paths. `check_flags = false` compares payloads only: the windowed
/// batch path deliberately reports different warm-state flags
/// (prefetched requests are cache hits) while the payloads stay
/// bit-identical.
void ExpectSameResponse(const Result<SelectResponse>& got,
                        const Result<SelectResponse>& want,
                        const std::string& where, bool check_flags = true) {
  ASSERT_EQ(got.ok(), want.ok())
      << where << ": " << got.status() << " vs " << want.status();
  if (!want.ok()) {
    // Full Status equality (code AND message): routing must not leak
    // into user-visible errors.
    EXPECT_TRUE(got.status() == want.status())
        << where << ": " << got.status() << " vs " << want.status();
    return;
  }
  const SelectResponse& g = got.value();
  const SelectResponse& w = want.value();
  EXPECT_EQ(g.target_id, w.target_id) << where;
  EXPECT_EQ(g.item_ids, w.item_ids) << where;
  EXPECT_EQ(g.selections, w.selections) << where;
  EXPECT_EQ(g.objective, w.objective) << where;
  // Exact-floor streams: every answer is full-quality on both sides,
  // proving the tier refactor left the default path untouched.
  EXPECT_EQ(g.tier, w.tier) << where;
  EXPECT_EQ(g.objective_gap, w.objective_gap) << where;
  EXPECT_EQ(g.tier, QualityTier::kExact) << where;
  EXPECT_EQ(g.objective_gap, 0.0) << where;
  ExpectSameTriple(g.alignment.target_vs_comparative,
                   w.alignment.target_vs_comparative);
  ExpectSameTriple(g.alignment.among_items, w.alignment.among_items);
  EXPECT_EQ(g.alignment.target_pairs, w.alignment.target_pairs) << where;
  EXPECT_EQ(g.alignment.among_pairs, w.alignment.among_pairs) << where;
  if (check_flags) {
    EXPECT_EQ(g.cache_hit, w.cache_hit) << where;
    EXPECT_EQ(g.result_cache_hit, w.result_cache_hit) << where;
  }
}

/// A mixed request stream exercising every response shape: several
/// selectors, exact repeats (memo hits), explicit comparative sets,
/// and both failure kinds (unknown target, empty target).
std::vector<SelectRequest> MixedStream(const IndexedCorpus& corpus) {
  std::vector<SelectRequest> requests;
  const std::vector<ProblemInstance>& instances = corpus.instances();
  const char* selectors[] = {"CompaReSetS", "CompaReSetS+", "CompaReSetSGreedy"};
  for (size_t i = 0; i < 9 && i < instances.size(); ++i) {
    SelectRequest request;
    request.target_id = instances[i].target().id;
    request.selector = selectors[i % 3];
    requests.push_back(request);
  }
  // Exact repeats of the first three — served whole from the memo, so
  // the flags must match too.
  for (size_t i = 0; i < 3; ++i) requests.push_back(requests[i]);
  // An explicit comparative set drawn from a real instance.
  SelectRequest explicit_set;
  explicit_set.target_id = instances[0].target().id;
  explicit_set.comparative_ids = {instances[0].items[1]->id,
                                  instances[0].items[2]->id};
  explicit_set.selector = "CompaReSetS";
  requests.push_back(explicit_set);
  // Failures: unknown and empty targets must fail identically.
  SelectRequest unknown;
  unknown.target_id = "no-such-product";
  requests.push_back(unknown);
  requests.push_back(SelectRequest{});
  return requests;
}

class RouterDeterminismTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RouterDeterminismTest, SelectMatchesTheSingleEngine) {
  auto corpus = MakeCorpus(80);
  EngineOptions engine_options;
  engine_options.threads = 1;
  SelectionEngine reference(corpus, engine_options);
  RouterOptions router_options;
  router_options.engine = engine_options;
  router_options.router_threads = 1;
  auto router = ShardRouter::Create(corpus, GetParam(), router_options);
  ASSERT_TRUE(router.ok()) << router.status();
  ASSERT_EQ(router.value()->num_shards(), GetParam());

  for (const SelectRequest& request : MixedStream(*corpus)) {
    ExpectSameResponse(router.value()->Select(request),
                       reference.Select(request),
                       "Select target=" + request.target_id);
  }
}

TEST_P(RouterDeterminismTest, SelectBatchMatchesTheSingleEngine) {
  auto corpus = MakeCorpus(80);
  EngineOptions engine_options;
  engine_options.threads = 1;
  SelectionEngine reference(corpus, engine_options);
  RouterOptions router_options;
  router_options.engine = engine_options;
  router_options.router_threads = 1;
  auto router = ShardRouter::Create(corpus, GetParam(), router_options);
  ASSERT_TRUE(router.ok()) << router.status();

  std::vector<SelectRequest> requests = MixedStream(*corpus);
  std::vector<Result<SelectResponse>> want = reference.SelectBatch(requests);
  std::vector<Result<SelectResponse>> got =
      router.value()->SelectBatch(requests);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(got[i], want[i],
                       "batch[" + std::to_string(i) +
                           "] target=" + requests[i].target_id);
  }
}

TEST_P(RouterDeterminismTest, WindowedSelectBatchMatchesWindowedEngine) {
  // With batch_kernel_window set, engine AND router stage each window's
  // kernel work (batched Gram builds, prefetched prepares) up front.
  // Shard sub-batches window independently of the single engine's
  // stream, yet responses — including the warm-state flags — must still
  // match: every prefetched request is a cache hit on both sides, and
  // repeats memo-hit in request order either way.
  auto corpus = MakeCorpus(80);
  EngineOptions engine_options;
  engine_options.threads = 1;
  engine_options.batch_kernel_window = 3;
  SelectionEngine reference(corpus, engine_options);
  RouterOptions router_options;
  router_options.engine = engine_options;
  router_options.router_threads = 1;
  auto router = ShardRouter::Create(corpus, GetParam(), router_options);
  ASSERT_TRUE(router.ok()) << router.status();

  std::vector<SelectRequest> requests = MixedStream(*corpus);
  std::vector<Result<SelectResponse>> want = reference.SelectBatch(requests);
  std::vector<Result<SelectResponse>> got =
      router.value()->SelectBatch(requests);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(got[i], want[i],
                       "windowed batch[" + std::to_string(i) +
                           "] target=" + requests[i].target_id);
  }
}

TEST_P(RouterDeterminismTest, PriorityClassIsPayloadInvisible) {
  // The scheduling class is a runtime control like deadline/cancel: it
  // decides who waits, never what is computed. A stream stamped kBatch
  // answers bit-identically to the same stream stamped kInteractive —
  // and to an engine configured not to demote batches at all.
  auto corpus = MakeCorpus(80);
  EngineOptions engine_options;
  engine_options.threads = 1;
  SelectionEngine reference(corpus, engine_options);

  RouterOptions router_options;
  router_options.engine = engine_options;
  router_options.router_threads = 1;
  auto router = ShardRouter::Create(corpus, GetParam(), router_options);
  ASSERT_TRUE(router.ok()) << router.status();

  RouterOptions fifo_options = router_options;
  fifo_options.engine.batch_priority = RequestPriority::kInteractive;
  auto fifo_router = ShardRouter::Create(corpus, GetParam(), fifo_options);
  ASSERT_TRUE(fifo_router.ok()) << fifo_router.status();

  const RequestPriority priorities[] = {RequestPriority::kInteractive,
                                        RequestPriority::kBatch};
  for (RequestPriority priority : priorities) {
    std::vector<SelectRequest> requests = MixedStream(*corpus);
    for (SelectRequest& request : requests) request.priority = priority;
    std::vector<Result<SelectResponse>> want = reference.SelectBatch(requests);
    std::vector<Result<SelectResponse>> got =
        router.value()->SelectBatch(requests);
    std::vector<Result<SelectResponse>> fifo =
        fifo_router.value()->SelectBatch(requests);
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(fifo.size(), want.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      const std::string where = std::string(RequestPriorityName(priority)) +
                                " batch[" + std::to_string(i) +
                                "] target=" + requests[i].target_id;
      ExpectSameResponse(got[i], want[i], where);
      ExpectSameResponse(fifo[i], want[i], "fifo " + where);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, RouterDeterminismTest,
                         ::testing::Values(1u, 2u, 4u));

TEST(BatchKernelWindowTest, WindowedBatchPayloadsMatchUnwindowed) {
  // The window is a scheduling/locality knob only: payloads (and
  // per-request statuses) are bit-identical to the unwindowed batch.
  // Warm-state flags differ by design — every valid windowed request is
  // prepared by its window's prefetch, so it reports cache_hit.
  auto corpus = MakeCorpus(80);
  EngineOptions serial_options;
  serial_options.threads = 1;
  SelectionEngine reference(corpus, serial_options);
  EngineOptions windowed_options = serial_options;
  windowed_options.batch_kernel_window = 3;
  SelectionEngine windowed(corpus, windowed_options);

  std::vector<SelectRequest> requests = MixedStream(*corpus);
  std::vector<Result<SelectResponse>> want = reference.SelectBatch(requests);
  std::vector<Result<SelectResponse>> got = windowed.SelectBatch(requests);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(got[i], want[i],
                       "windowed-vs-plain[" + std::to_string(i) + "]",
                       /*check_flags=*/false);
    if (got[i].ok()) {
      EXPECT_TRUE(got[i].value().cache_hit)
          << "windowed request " << i << " should be prefetched";
    }
  }
}

TEST(BatchKernelWindowTest, PooledWindowCoalescesExactRepeats) {
  // On a pooled engine, exact repeats inside one window run behind
  // their head on its lane, so they deterministically memo-hit instead
  // of racing. Payloads still match the serial unwindowed reference.
  auto corpus = MakeCorpus(80);
  EngineOptions serial_options;
  serial_options.threads = 1;
  SelectionEngine reference(corpus, serial_options);
  EngineOptions pooled_options;
  pooled_options.threads = 2;
  pooled_options.batch_kernel_window = 64;  // One window spans the batch.
  SelectionEngine pooled(corpus, pooled_options);

  std::vector<SelectRequest> requests = MixedStream(*corpus);
  std::vector<Result<SelectResponse>> want = reference.SelectBatch(requests);
  std::vector<Result<SelectResponse>> got = pooled.SelectBatch(requests);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResponse(got[i], want[i],
                       "pooled-window[" + std::to_string(i) + "]",
                       /*check_flags=*/false);
  }
  // MixedStream indices 9..11 repeat 0..2 exactly — same window here.
  for (size_t i = 9; i < 12; ++i) {
    ASSERT_TRUE(got[i].ok());
    EXPECT_TRUE(got[i].value().result_cache_hit)
        << "in-window repeat " << i << " must memo-hit its head";
  }
}

}  // namespace
}  // namespace comparesets
