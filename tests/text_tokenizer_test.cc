#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include "text/stopwords.h"

namespace comparesets {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  EXPECT_EQ(Tokenize("Hello, World! It's GREAT."),
            (std::vector<std::string>{"hello", "world", "its", "great"}));
}

TEST(TokenizerTest, KeepsNumbers) {
  EXPECT_EQ(Tokenize("rated 4 out of 5 stars"),
            (std::vector<std::string>{"rated", "4", "out", "of", "5",
                                      "stars"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!! ---").empty());
}

TEST(TokenizerTest, ApostrophesDropped) {
  EXPECT_EQ(Tokenize("don't can't"),
            (std::vector<std::string>{"dont", "cant"}));
}

TEST(TokenizerTest, MinTokenLengthFilters) {
  TokenizerOptions options;
  options.min_token_length = 3;
  EXPECT_EQ(Tokenize("a big cat on tv", options),
            (std::vector<std::string>{"big", "cat"}));
}

TEST(TokenizerTest, NoLowercaseOption) {
  TokenizerOptions options;
  options.lowercase = false;
  EXPECT_EQ(Tokenize("Hello World", options),
            (std::vector<std::string>{"Hello", "World"}));
}

TEST(LightStemTest, StripsCommonSuffixes) {
  EXPECT_EQ(LightStem("batteries"), "battery");
  EXPECT_EQ(LightStem("chargers"), "charger");
  EXPECT_EQ(LightStem("charging"), "charg");
  EXPECT_EQ(LightStem("worked"), "work");
  EXPECT_EQ(LightStem("boxes"), "boxe");  // Conservative: only drops 's'-ish.
}

TEST(LightStemTest, LeavesShortAndSafeWordsAlone) {
  EXPECT_EQ(LightStem("is"), "is");
  EXPECT_EQ(LightStem("was"), "was");
  EXPECT_EQ(LightStem("less"), "less");  // Double-s protected.
  EXPECT_EQ(LightStem("bed"), "bed");
}

TEST(TokenizerTest, StemmingAppliedWhenEnabled) {
  TokenizerOptions options;
  options.light_stem = true;
  std::vector<std::string> tokens = Tokenize("the batteries worked", options);
  EXPECT_EQ(tokens, (std::vector<std::string>{"the", "battery", "work"}));
}

TEST(SplitSentencesTest, SplitsOnTerminators) {
  EXPECT_EQ(
      SplitSentences("First one. Second!  Third? done"),
      (std::vector<std::string>{"First one", "Second", "Third", "done"}));
}

TEST(SplitSentencesTest, EmptySentencesDropped) {
  EXPECT_EQ(SplitSentences("Hi.. . !"), (std::vector<std::string>{"Hi"}));
  EXPECT_TRUE(SplitSentences("").empty());
}

TEST(StopwordsTest, CommonWordsAreStopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("dont"));
  EXPECT_TRUE(IsStopword("myself"));
}

TEST(StopwordsTest, ContentWordsAreNot) {
  EXPECT_FALSE(IsStopword("battery"));
  EXPECT_FALSE(IsStopword("great"));
  EXPECT_FALSE(IsStopword("puzzle"));
}

TEST(StopwordsTest, SetIsNonTrivial) {
  EXPECT_GT(EnglishStopwords().size(), 100u);
}

}  // namespace
}  // namespace comparesets
