#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/rng.h"

namespace comparesets {
namespace {

/// A well-conditioned Gram matrix G = AᵀA from a random tall A.
Matrix RandomGram(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix a(3 * n + 4, n);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) a(r, c) = rng.Normal();
  }
  Matrix gram(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      gram(i, j) = a.Column(i).Dot(a.Column(j));
    }
  }
  return gram;
}

/// Builds the factor over `vars` by appending each variable in order.
void AppendAll(const Matrix& gram, const std::vector<size_t>& vars,
               IncrementalCholesky* chol) {
  std::vector<double> cross;
  std::vector<size_t> in_factor;
  for (size_t v : vars) {
    cross.resize(in_factor.size());
    for (size_t t = 0; t < in_factor.size(); ++t) {
      cross[t] = gram(v, in_factor[t]);
    }
    ASSERT_TRUE(chol->Append(cross.data(), gram(v, v))) << "var " << v;
    in_factor.push_back(v);
  }
}

/// Reference solve of G[vars, vars] z = rhs via fresh dense Cholesky.
std::vector<double> ReferenceSolve(const Matrix& gram,
                                   const std::vector<size_t>& vars,
                                   const std::vector<double>& rhs) {
  size_t n = vars.size();
  // Dense from-scratch Cholesky.
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = gram(vars[i], vars[j]);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  std::vector<double> z(rhs);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < i; ++k) z[i] -= l(i, k) * z[k];
    z[i] /= l(i, i);
  }
  for (size_t i = n; i-- > 0;) {
    for (size_t k = i + 1; k < n; ++k) z[i] -= l(k, i) * z[k];
    z[i] /= l(i, i);
  }
  return z;
}

TEST(IncrementalCholeskyTest, AppendAndSolveMatchesReference) {
  Matrix gram = RandomGram(8, 21);
  IncrementalCholesky chol;
  std::vector<size_t> vars = {0, 1, 2, 3, 4, 5, 6, 7};
  AppendAll(gram, vars, &chol);
  ASSERT_EQ(chol.size(), 8u);

  Rng rng(22);
  std::vector<double> rhs(8);
  for (double& v : rhs) v = rng.Normal();
  std::vector<double> z(8);
  chol.Solve(rhs.data(), z.data());
  std::vector<double> expected = ReferenceSolve(gram, vars, rhs);
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(z[i], expected[i], 1e-9);
}

TEST(IncrementalCholeskyTest, SolveSupportsAliasedBuffers) {
  Matrix gram = RandomGram(5, 23);
  IncrementalCholesky chol;
  AppendAll(gram, {0, 1, 2, 3, 4}, &chol);
  Rng rng(24);
  std::vector<double> rhs(5);
  for (double& v : rhs) v = rng.Normal();
  std::vector<double> copy = rhs;
  std::vector<double> z(5);
  chol.Solve(copy.data(), z.data());
  chol.Solve(copy.data(), copy.data());  // In place.
  for (size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(copy[i], z[i]);
}

TEST(IncrementalCholeskyTest, RemoveMatchesFactorBuiltFromScratch) {
  Matrix gram = RandomGram(7, 25);
  IncrementalCholesky incremental;
  AppendAll(gram, {0, 1, 2, 3, 4, 5, 6}, &incremental);

  // Remove the middle variable (factor position 3 → variable 3).
  incremental.Remove(3);
  ASSERT_EQ(incremental.size(), 6u);

  std::vector<size_t> reduced = {0, 1, 2, 4, 5, 6};
  Rng rng(26);
  std::vector<double> rhs(6);
  for (double& v : rhs) v = rng.Normal();
  std::vector<double> z(6);
  incremental.Solve(rhs.data(), z.data());
  std::vector<double> expected = ReferenceSolve(gram, reduced, rhs);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(z[i], expected[i], 1e-9);
}

TEST(IncrementalCholeskyTest, RandomAppendRemoveSequenceStaysConsistent) {
  // Property test: after any interleaving of appends and removals, the
  // incremental factor solves exactly like a from-scratch factor of the
  // surviving variable set — the NNLS passive set's lifecycle.
  Matrix gram = RandomGram(12, 27);
  Rng rng(28);
  for (int trial = 0; trial < 20; ++trial) {
    IncrementalCholesky chol;
    std::vector<size_t> live;
    std::vector<double> cross;
    size_t next = 0;
    for (int step = 0; step < 18; ++step) {
      bool removable = !live.empty();
      if (next < 12 && (!removable || rng.UniformDouble() < 0.6)) {
        cross.resize(live.size());
        for (size_t t = 0; t < live.size(); ++t) {
          cross[t] = gram(next, live[t]);
        }
        ASSERT_TRUE(chol.Append(cross.data(), gram(next, next)));
        live.push_back(next++);
      } else if (removable) {
        size_t pos = static_cast<size_t>(rng.UniformDouble() *
                                         static_cast<double>(live.size()));
        pos = std::min(pos, live.size() - 1);
        chol.Remove(pos);
        live.erase(live.begin() + static_cast<ptrdiff_t>(pos));
      }
      ASSERT_EQ(chol.size(), live.size());
      if (live.empty()) continue;
      std::vector<double> rhs(live.size());
      for (double& v : rhs) v = rng.Normal();
      std::vector<double> z(live.size());
      chol.Solve(rhs.data(), z.data());
      std::vector<double> expected = ReferenceSolve(gram, live, rhs);
      for (size_t i = 0; i < live.size(); ++i) {
        ASSERT_NEAR(z[i], expected[i], 1e-8)
            << "trial " << trial << " step " << step;
      }
    }
  }
}

TEST(IncrementalCholeskyTest, RejectsLinearlyDependentColumn) {
  // G for A = [e1, e2, e1+e2]: the third column is dependent.
  Matrix gram(3, 3);
  gram(0, 0) = 1.0;
  gram(1, 1) = 1.0;
  gram(2, 2) = 2.0;
  gram(0, 2) = gram(2, 0) = 1.0;
  gram(1, 2) = gram(2, 1) = 1.0;

  IncrementalCholesky chol;
  double none = 0.0;
  ASSERT_TRUE(chol.Append(&none, gram(0, 0)));
  double cross1[] = {gram(1, 0)};
  ASSERT_TRUE(chol.Append(cross1, gram(1, 1)));
  double cross2[] = {gram(2, 0), gram(2, 1)};
  EXPECT_FALSE(chol.Append(cross2, gram(2, 2)));
  EXPECT_EQ(chol.size(), 2u);  // Factor unchanged by the rejected append.
}

TEST(IncrementalCholeskyTest, ClearResetsForReuse) {
  Matrix gram = RandomGram(4, 29);
  IncrementalCholesky chol;
  AppendAll(gram, {0, 1, 2, 3}, &chol);
  chol.Clear();
  EXPECT_EQ(chol.size(), 0u);
  AppendAll(gram, {2, 0}, &chol);
  EXPECT_EQ(chol.size(), 2u);
  std::vector<double> rhs = {1.0, -2.0};
  std::vector<double> z(2);
  chol.Solve(rhs.data(), z.data());
  std::vector<double> expected = ReferenceSolve(gram, {2, 0}, rhs);
  EXPECT_NEAR(z[0], expected[0], 1e-9);
  EXPECT_NEAR(z[1], expected[1], 1e-9);
}

}  // namespace
}  // namespace comparesets
