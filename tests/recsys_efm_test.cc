#include "recsys/efm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "core/selector.h"
#include "data/synthetic.h"
#include "opinion/vectors.h"
#include "test_fixtures.h"

namespace comparesets {
namespace {

Corpus SmallSynthetic() {
  SyntheticConfig config = DefaultConfig("Cellphone", 80).ValueOrDie();
  config.seed = 5;
  return GenerateCorpus(config).ValueOrDie();
}

TEST(EfmTest, TrainsOnSyntheticCorpus) {
  Corpus corpus = SmallSynthetic();
  auto model = ExplicitFactorModel::Train(corpus);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model.value().num_items(), corpus.num_products());
  EXPECT_GT(model.value().num_users(), 0u);
  EXPECT_EQ(model.value().num_aspects(), corpus.num_aspects());
}

TEST(EfmTest, ReconstructionErrorReasonable) {
  // Quality targets live in (0, 1); an ALS fit must beat the trivial
  // predict-0.5 baseline by a clear margin.
  Corpus corpus = SmallSynthetic();
  auto model = ExplicitFactorModel::Train(corpus);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model.value().quality_rmse(), 0.25);
  EXPECT_LT(model.value().attention_rmse(), 0.4);
  EXPECT_GT(model.value().quality_rmse(), 0.0);
}

TEST(EfmTest, MoreFactorsFitBetter) {
  Corpus corpus = SmallSynthetic();
  EfmConfig small;
  small.factors = 2;
  EfmConfig large;
  large.factors = 12;
  auto coarse = ExplicitFactorModel::Train(corpus, small);
  auto fine = ExplicitFactorModel::Train(corpus, large);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_LE(fine.value().quality_rmse(),
            coarse.value().quality_rmse() + 1e-6);
}

TEST(EfmTest, PredictionsBounded) {
  Corpus corpus = SmallSynthetic();
  auto model = ExplicitFactorModel::Train(corpus).ValueOrDie();
  const Product& product = corpus.products()[0];
  for (size_t a = 0; a < corpus.num_aspects(); ++a) {
    double quality =
        model.PredictItemQuality(product.id, static_cast<AspectId>(a));
    EXPECT_GE(quality, 0.0);
    EXPECT_LE(quality, 1.0);
  }
  Vector preference =
      model.UserItemPreference(product.reviews[0].reviewer_id, product.id);
  EXPECT_EQ(preference.size(), corpus.num_aspects());
  for (size_t a = 0; a < preference.size(); ++a) {
    EXPECT_GE(preference[a], 0.0);
    EXPECT_LE(preference[a], 1.0);
  }
}

TEST(EfmTest, ColdStartFallsBackToAspectMeans) {
  Corpus corpus = SmallSynthetic();
  auto model = ExplicitFactorModel::Train(corpus).ValueOrDie();
  double unknown_item = model.PredictItemQuality("no-such-item", 0);
  double unknown_user = model.PredictUserAttention("no-such-user", 0);
  EXPECT_GE(unknown_item, 0.0);
  EXPECT_LE(unknown_item, 1.0);
  EXPECT_GE(unknown_user, 0.0);
  EXPECT_LE(unknown_user, 1.0);
}

TEST(EfmTest, PredictionCorrelatesWithObservedQuality) {
  // Items whose reviews are strongly positive on an aspect must get a
  // higher predicted quality than items strongly negative on it.
  Corpus corpus = SmallSynthetic();
  auto model = ExplicitFactorModel::Train(corpus).ValueOrDie();

  double high_sum = 0.0;
  double low_sum = 0.0;
  size_t high_count = 0;
  size_t low_count = 0;
  for (const Product& product : corpus.products()) {
    std::unordered_map<AspectId, std::pair<double, int>> sentiment;
    for (const Review& review : product.reviews) {
      for (const OpinionMention& mention : review.opinions) {
        double s = mention.polarity == Polarity::kPositive
                       ? mention.strength
                       : (mention.polarity == Polarity::kNegative
                              ? -mention.strength
                              : 0.0);
        auto& [sum, count] = sentiment[mention.aspect];
        sum += s;
        ++count;
      }
    }
    for (const auto& [aspect, pair] : sentiment) {
      if (pair.second < 3) continue;  // Need signal.
      double mean = pair.first / pair.second;
      double predicted = model.PredictItemQuality(product.id, aspect);
      if (mean > 0.8) {
        high_sum += predicted;
        ++high_count;
      } else if (mean < -0.8) {
        low_sum += predicted;
        ++low_count;
      }
    }
  }
  ASSERT_GT(high_count, 5u);
  ASSERT_GT(low_count, 5u);
  EXPECT_GT(high_sum / high_count, low_sum / low_count + 0.15);
}

TEST(EfmTest, InvalidInputsRejected) {
  Corpus empty("empty");
  empty.Finalize();
  EXPECT_FALSE(ExplicitFactorModel::Train(empty).ok());

  Corpus corpus = SmallSynthetic();
  EfmConfig config;
  config.factors = 0;
  EXPECT_FALSE(ExplicitFactorModel::Train(corpus, config).ok());
}

// --- Review preference table + learned opinion model -----------------------

TEST(LearnedOpinionTest, TableCoversEveryReview) {
  Corpus corpus = SmallSynthetic();
  auto model = ExplicitFactorModel::Train(corpus).ValueOrDie();
  auto table = BuildReviewPreferenceTable(corpus, model);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->size(), corpus.num_reviews());
  // Masking: entries outside a review's mentioned aspects are zero.
  const Review& review = corpus.products()[0].reviews[0];
  const Vector& vector = table.value()->at(review.id);
  std::vector<AspectId> mentioned = review.MentionedAspects();
  for (size_t a = 0; a < vector.size(); ++a) {
    bool is_mentioned =
        std::find(mentioned.begin(), mentioned.end(),
                  static_cast<AspectId>(a)) != mentioned.end();
    if (!is_mentioned) {
      EXPECT_DOUBLE_EQ(vector[a], 0.0);
    }
  }
}

TEST(LearnedOpinionTest, OpinionModelAveragesTableVectors) {
  Corpus corpus = SmallSynthetic();
  auto efm = ExplicitFactorModel::Train(corpus).ValueOrDie();
  auto table = BuildReviewPreferenceTable(corpus, efm).ValueOrDie();
  OpinionModel model =
      OpinionModel::LearnedPreference(corpus.num_aspects(), table);
  EXPECT_EQ(model.opinion_dims(), corpus.num_aspects());

  const Product& product = corpus.products()[0];
  ReviewSet pair = {&product.reviews[0], &product.reviews[1]};
  Vector expected = table->at(product.reviews[0].id);
  expected.Axpy(1.0, table->at(product.reviews[1].id));
  expected.Scale(0.5);
  EXPECT_TRUE(model.OpinionVector(pair).AlmostEquals(expected));
  EXPECT_TRUE(model.ReviewOpinionColumn(product.reviews[0])
                  .AlmostEquals(table->at(product.reviews[0].id)));
}

TEST(LearnedOpinionTest, EndToEndSelectionUnderLearnedModel) {
  Corpus corpus = SmallSynthetic();
  auto efm = ExplicitFactorModel::Train(corpus).ValueOrDie();
  auto table = BuildReviewPreferenceTable(corpus, efm).ValueOrDie();
  OpinionModel model =
      OpinionModel::LearnedPreference(corpus.num_aspects(), table);

  std::vector<ProblemInstance> instances = corpus.BuildInstances();
  ASSERT_FALSE(instances.empty());
  InstanceVectors vectors = BuildInstanceVectors(model, instances[0]);
  SelectorOptions options;
  options.m = 3;
  auto result =
      MakeSelector("CompaReSetS+").ValueOrDie()->Select(vectors, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().selections.size(), instances[0].num_items());
  for (size_t i = 0; i < result.value().selections.size(); ++i) {
    EXPECT_GE(result.value().selections[i].size(), 1u);
    EXPECT_LE(result.value().selections[i].size(), 3u);
  }
}

TEST(LearnedOpinionTest, MismatchedTableRejected) {
  Corpus corpus = SmallSynthetic();
  auto efm = ExplicitFactorModel::Train(corpus).ValueOrDie();
  // A corpus whose catalog disagrees with the trained model is refused.
  Corpus tiny("tiny");
  tiny.catalog().Intern("only-aspect");
  tiny.Finalize();
  auto table = BuildReviewPreferenceTable(tiny, efm);
  EXPECT_FALSE(table.ok());
}

}  // namespace
}  // namespace comparesets
