// Engine-level contract of intra-request parallelism
// (docs/execution-model.md): a lone Select lends the pool to the
// request's internal fan-out, a pooled SelectBatch keeps it for the
// batch (requests inside solve serially), and every configuration
// returns bit-identical responses. Also pins the new observability:
// solver.intra_parallel_* counters, trace fields, and span timings.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/runner.h"
#include "service/engine.h"

namespace comparesets {
namespace {

std::shared_ptr<const IndexedCorpus> TestCorpus() {
  RunnerConfig config;
  config.category = "Cellphone";
  config.num_products = 24;
  config.max_instances = 6;
  config.seed = 11;
  static Workload workload = Workload::BuildSynthetic(config).ValueOrDie();
  return workload.indexed_corpus();
}

std::vector<std::string> InstanceTargets(size_t count) {
  auto corpus = TestCorpus();
  std::vector<std::string> targets;
  for (const ProblemInstance& instance : corpus->instances()) {
    if (targets.size() >= count) break;
    targets.push_back(instance.target().id);
  }
  return targets;
}

SelectRequest MakeRequest(const std::string& target,
                          const std::string& selector = "CompaReSetS+") {
  SelectRequest request;
  request.target_id = target;
  request.selector = selector;
  request.options.m = 3;
  return request;
}

EngineOptions FastOptions() {
  EngineOptions options;
  options.measure_alignment = false;  // Irrelevant here; keep tests fast.
  return options;
}

TEST(ServiceIntraParallelTest, SelectBitIdenticalAcrossIntraThreadSettings) {
  for (const std::string& selector :
       {std::string("Crs"), std::string("CompaReSetS"),
        std::string("CompaReSetS+")}) {
    EngineOptions serial_options = FastOptions();
    serial_options.threads = 3;
    serial_options.max_intra_request_threads = 1;
    SelectionEngine serial_engine(TestCorpus(), serial_options);

    EngineOptions parallel_options = FastOptions();
    parallel_options.threads = 3;
    parallel_options.max_intra_request_threads = 0;  // Whole pool.
    SelectionEngine parallel_engine(TestCorpus(), parallel_options);

    for (const std::string& target : InstanceTargets(4)) {
      auto a = serial_engine.Select(MakeRequest(target, selector));
      auto b = parallel_engine.Select(MakeRequest(target, selector));
      ASSERT_TRUE(a.ok()) << selector << " " << target;
      ASSERT_TRUE(b.ok()) << selector << " " << target;
      EXPECT_EQ(a.value().selections, b.value().selections)
          << selector << " " << target;
      EXPECT_EQ(a.value().objective, b.value().objective)
          << selector << " " << target;
    }
  }
}

TEST(ServiceIntraParallelTest, LoneSelectFansOutAndCountsIt) {
  EngineOptions options = FastOptions();
  options.threads = 3;
  options.result_capacity = 0;  // No memo: every Select really solves.
  SelectionEngine engine(TestCorpus(), options);

  auto response = engine.Select(MakeRequest(InstanceTargets(1)[0]));
  ASSERT_TRUE(response.ok());
  // The instance has > 1 item and the pool has workers, so the per-item
  // sweep must have fanned out at least once (bootstrap + sync round
  // for CompaReSetS+) and tallied more tasks than fan-outs.
  EXPECT_GT(response.value().trace.intra_parallel_fanouts, 0u);
  EXPECT_GT(response.value().trace.intra_parallel_tasks,
            response.value().trace.intra_parallel_fanouts);

  // Spans name the solver phases; CompaReSetS+ records its bootstrap
  // item sweep and at least one sync round.
  bool saw_items = false;
  bool saw_round = false;
  for (const TraceSpan& span : response.value().trace.spans) {
    if (span.name == "compare_sets.items") saw_items = true;
    if (span.name == "compare_sets_plus.round") saw_round = true;
    EXPECT_GE(span.seconds, 0.0) << span.name;
  }
  EXPECT_TRUE(saw_items);
  EXPECT_TRUE(saw_round);

  // The registry aggregates the same tallies.
  std::string metrics = engine.DumpMetrics();
  EXPECT_NE(metrics.find("solver.intra_parallel_fanouts"), std::string::npos);
  EXPECT_NE(metrics.find("solver.intra_parallel_tasks"), std::string::npos);
}

TEST(ServiceIntraParallelTest, MemoHitSkipsSolveButTraceStaysFresh) {
  EngineOptions options = FastOptions();
  options.threads = 3;
  SelectionEngine engine(TestCorpus(), options);
  std::string target = InstanceTargets(1)[0];

  auto first = engine.Select(MakeRequest(target));
  ASSERT_TRUE(first.ok());
  auto second = engine.Select(MakeRequest(target));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().result_cache_hit);
  EXPECT_EQ(second.value().selections, first.value().selections);
  // No solve ran, so the memo hit's trace reports no fan-out.
  EXPECT_EQ(second.value().trace.intra_parallel_fanouts, 0u);
  EXPECT_TRUE(second.value().trace.spans.empty());
}

// Nesting rule: requests inside a pooled batch run with an empty
// context — the pool already belongs to the batch fan-out.
TEST(ServiceIntraParallelTest, PooledBatchRequestsSolveSeriallyInside) {
  EngineOptions options = FastOptions();
  options.threads = 3;
  options.result_capacity = 0;
  SelectionEngine engine(TestCorpus(), options);

  std::vector<SelectRequest> requests;
  for (const std::string& target : InstanceTargets(4)) {
    requests.push_back(MakeRequest(target));
  }
  auto responses = engine.SelectBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << "request " << i;
    EXPECT_EQ(responses[i].value().trace.intra_parallel_fanouts, 0u)
        << "request " << i;
  }
}

// A single-threaded engine runs batch requests inline, one at a time —
// so each request may still lend the idle pool to its internal fan-out.
TEST(ServiceIntraParallelTest, InlineBatchStillFansOutIntraRequest) {
  EngineOptions options = FastOptions();
  options.threads = 1;
  options.result_capacity = 0;
  SelectionEngine engine(TestCorpus(), options);

  std::vector<SelectRequest> requests;
  for (const std::string& target : InstanceTargets(2)) {
    requests.push_back(MakeRequest(target));
  }
  auto responses = engine.SelectBatch(requests);
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << "request " << i;
    EXPECT_GT(responses[i].value().trace.intra_parallel_fanouts, 0u)
        << "request " << i;
  }
}

// Contention stress: batch fan-out and intra-request fan-out share the
// one pool across repeated rounds; responses must stay bit-identical to
// the single-request answers every time (races here are exactly what
// ASan/TSan runs of this test exist to catch).
TEST(ServiceIntraParallelTest, RepeatedNestedBatchesStayDeterministic) {
  EngineOptions options = FastOptions();
  options.threads = 2;
  options.result_capacity = 0;
  SelectionEngine engine(TestCorpus(), options);

  std::vector<std::string> targets = InstanceTargets(3);
  std::vector<SelectRequest> requests;
  for (const std::string& target : targets) {
    requests.push_back(MakeRequest(target));
    requests.push_back(MakeRequest(target, "CompaReSetS"));
  }

  // Reference answers from lone Selects (whole pool to each request).
  std::vector<std::vector<Selection>> expected;
  for (const SelectRequest& request : requests) {
    auto response = engine.Select(request);
    ASSERT_TRUE(response.ok());
    expected.push_back(response.value().selections);
  }

  for (int round = 0; round < 100; ++round) {
    auto responses = engine.SelectBatch(requests);
    ASSERT_EQ(responses.size(), requests.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok()) << "round " << round << " request " << i;
      ASSERT_EQ(responses[i].value().selections, expected[i])
          << "round " << round << " request " << i;
    }
  }
}

// Cancellation must land inside the parallel sweep and surface as
// kCancelled, with the engine still healthy afterwards.
TEST(ServiceIntraParallelTest, CancellationMidParallelSweepSurfaces) {
  EngineOptions options = FastOptions();
  options.threads = 3;
  options.result_capacity = 0;
  SelectionEngine engine(TestCorpus(), options);
  std::string target = InstanceTargets(1)[0];

  CancelToken cancel;
  cancel.Cancel();
  SelectRequest request = MakeRequest(target);
  request.cancel = &cancel;
  auto cancelled = engine.Select(request);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  // Deadline expiry inside the fan-out behaves the same way.
  SelectRequest expired = MakeRequest(target);
  expired.deadline_seconds = 1e-9;
  auto timed_out = engine.Select(expired);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  // The pool survives the aborted sweeps: a clean request still works.
  auto healthy = engine.Select(MakeRequest(target));
  ASSERT_TRUE(healthy.ok());
}

}  // namespace
}  // namespace comparesets
