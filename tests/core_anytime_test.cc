// Quality-tier contract tests for the selection core: the SelectTiered
// anytime protocol (exact-floor equivalence, deterministic greedy
// incumbent on deadline expiry, monotonicity against the incumbent) and
// the review-sampling path (seeded determinism, the reported
// objective-gap bound, and lossless promotion back to exact).

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/greedy_selector.h"
#include "core/selector.h"
#include "test_fixtures.h"
#include "util/cancellation.h"
#include "util/timer.h"

namespace comparesets {
namespace {

class AnytimeTest : public ::testing::Test {
 protected:
  AnytimeTest()
      : corpus_(testing::WorkingExampleCorpus()),
        instance_(testing::WorkingExampleInstance(corpus_)),
        vectors_(BuildInstanceVectors(OpinionModel::Binary(5), instance_)) {}

  static SelectorOptions Options() {
    SelectorOptions options;
    options.m = 3;
    options.lambda = 1.0;
    options.mu = 0.1;
    return options;
  }

  Corpus corpus_;
  ProblemInstance instance_;
  InstanceVectors vectors_;
};

TEST(QualityTierTest, NamesRoundTrip) {
  for (QualityTier tier : {QualityTier::kSampled, QualityTier::kAnytime,
                           QualityTier::kExact}) {
    auto parsed = ParseQualityTier(QualityTierName(tier));
    ASSERT_TRUE(parsed.ok()) << QualityTierName(tier);
    EXPECT_EQ(parsed.value(), tier);
  }
  auto bogus = ParseQualityTier("platinum");
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);
}

TEST(QualityTierTest, LooserTierPicksTheMoreDegradedFloor) {
  EXPECT_EQ(LooserTier(QualityTier::kExact, QualityTier::kAnytime),
            QualityTier::kAnytime);
  EXPECT_EQ(LooserTier(QualityTier::kSampled, QualityTier::kExact),
            QualityTier::kSampled);
  EXPECT_EQ(LooserTier(QualityTier::kExact, QualityTier::kExact),
            QualityTier::kExact);
}

TEST_F(AnytimeTest, ExactFloorUnderDeadlineIsPlainSelect) {
  // With the default kExact floor, SelectTiered must be Select: same
  // bits, even when the control carries a (generous) deadline.
  for (const std::string& name : AllSelectorNames()) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok()) << name;
    Deadline deadline(60.0);
    ExecControl control;
    control.deadline = &deadline;
    SelectorOptions options = Options();
    auto plain = selector.value()->Select(vectors_, options, nullptr);
    auto tiered = selector.value()->SelectTiered(vectors_, options, &control);
    ASSERT_TRUE(plain.ok()) << name;
    ASSERT_TRUE(tiered.ok()) << name;
    EXPECT_EQ(tiered.value().selections, plain.value().selections) << name;
    EXPECT_EQ(tiered.value().objective, plain.value().objective) << name;
    EXPECT_EQ(tiered.value().tier, QualityTier::kExact) << name;
    EXPECT_EQ(tiered.value().objective_gap, 0.0) << name;
  }
}

TEST_F(AnytimeTest, UnlimitedDeadlineWithAnytimeFloorStaysExact) {
  // The floor only widens what counts as an answer; an unbounded run
  // still completes exactly.
  auto selector = MakeSelector("CompaReSetS+");
  ASSERT_TRUE(selector.ok());
  SelectorOptions options = Options();
  options.min_tier = QualityTier::kAnytime;
  auto plain = selector.value()->Select(vectors_, options, nullptr);
  auto tiered = selector.value()->SelectTiered(vectors_, options, nullptr);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(tiered.ok());
  EXPECT_EQ(tiered.value().selections, plain.value().selections);
  EXPECT_EQ(tiered.value().tier, QualityTier::kExact);
}

TEST_F(AnytimeTest, ExpiredDeadlineYieldsGreedyIncumbentAsAnytime) {
  Deadline deadline(1e-9);
  while (!deadline.Expired()) {
  }
  ExecControl control;
  control.deadline = &deadline;
  SelectorOptions options = Options();

  // Sanity: under the exact floor an expired deadline is an error.
  auto selector = MakeSelector("CompaReSetS+");
  ASSERT_TRUE(selector.ok());
  auto refused = selector.value()->Select(vectors_, options, &control);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDeadlineExceeded);

  // With the anytime floor the same call answers with the greedy
  // incumbent — deterministically: the incumbent solves with the
  // deadline stripped, so its selections are exactly greedy's.
  options.min_tier = QualityTier::kAnytime;
  auto tiered = selector.value()->SelectTiered(vectors_, options, &control);
  ASSERT_TRUE(tiered.ok()) << tiered.status();
  EXPECT_EQ(tiered.value().tier, QualityTier::kAnytime);
  EXPECT_EQ(tiered.value().objective_gap, 0.0);

  CompareSetsGreedySelector greedy;
  auto incumbent = greedy.Select(vectors_, options, nullptr);
  ASSERT_TRUE(incumbent.ok());
  EXPECT_EQ(tiered.value().selections, incumbent.value().selections);
  EXPECT_EQ(tiered.value().objective, incumbent.value().objective);
}

TEST_F(AnytimeTest, AnytimeResultNeverWorseThanGreedyIncumbent) {
  // Monotonicity: whatever SelectTiered returns under the anytime floor
  // must score at least as well (Eq. 5 minimizes) as the greedy
  // incumbent it started from.
  CompareSetsGreedySelector greedy;
  SelectorOptions options = Options();
  options.min_tier = QualityTier::kAnytime;
  auto incumbent = greedy.Select(vectors_, options, nullptr);
  ASSERT_TRUE(incumbent.ok());
  for (const std::string& name : AllSelectorNames()) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok()) << name;
    Deadline deadline(60.0);
    ExecControl control;
    control.deadline = &deadline;
    auto tiered = selector.value()->SelectTiered(vectors_, options, &control);
    ASSERT_TRUE(tiered.ok()) << name;
    EXPECT_LE(tiered.value().objective, incumbent.value().objective) << name;
  }
}

// --- Review sampling -------------------------------------------------------

// Corpus whose target has `num_patterns` dedup groups of
// `copies_per_pattern` annotation-identical reviews each, plus two
// small comparative items that never cross a sampling threshold.
Corpus SamplingCorpus(size_t num_patterns, size_t copies_per_pattern) {
  Corpus corpus("SamplingFixture");
  for (size_t a = 0; a < num_patterns; ++a) {
    corpus.catalog().Intern("aspect" + std::to_string(a));
  }
  Product big;
  big.id = "big";
  big.also_bought = {"c1", "c2"};
  size_t r = 0;
  for (size_t g = 0; g < num_patterns; ++g) {
    for (size_t c = 0; c < copies_per_pattern; ++c, ++r) {
      big.reviews.push_back(testing::MakeReview(
          "b" + std::to_string(r),
          {{static_cast<AspectId>(g), testing::kPos}}));
    }
  }
  corpus.AddProduct(std::move(big)).CheckOK();
  for (const char* id : {"c1", "c2"}) {
    Product item;
    item.id = id;
    for (int i = 0; i < 3; ++i) {
      item.reviews.push_back(testing::MakeReview(
          std::string(id) + "-r" + std::to_string(i),
          {{static_cast<AspectId>(i), testing::kPos}}));
    }
    corpus.AddProduct(std::move(item)).CheckOK();
  }
  corpus.Finalize();
  return corpus;
}

// InstanceVectors points back at the instance (and through it, the
// corpus) — the three must share a lifetime, hence this bundle.
struct SamplingFixture {
  explicit SamplingFixture(Corpus built)
      : corpus(std::move(built)),
        instance(MakeInstance(corpus)),
        vectors(BuildInstanceVectors(
            OpinionModel::Binary(corpus.num_aspects()), instance)) {}

  static ProblemInstance MakeInstance(const Corpus& corpus) {
    ProblemInstance instance;
    instance.items = {corpus.Find("big"), corpus.Find("c1"),
                      corpus.Find("c2")};
    return instance;
  }

  Corpus corpus;
  ProblemInstance instance;
  InstanceVectors vectors;
};

// The selectors whose solves go through per-item design systems — the
// surface review sampling restricts.
const std::vector<std::string>& SystemSelectors() {
  static const std::vector<std::string> names = {"Crs", "CompaReSetS",
                                                 "CompaReSetS+"};
  return names;
}

TEST(ReviewSamplingTest, SampledSolveIsDeterministicAndReportsExactGap) {
  // 20 singleton groups; a 5-review sample covers exactly 5 of them, so
  // the uncovered mass — and thus the reported gap — is exactly 15/20
  // regardless of which draw the seed produces.
  SamplingFixture fx(SamplingCorpus(/*num_patterns=*/20,
                                    /*copies_per_pattern=*/1));
  SelectorOptions options;
  options.m = 3;
  options.min_tier = QualityTier::kSampled;
  options.sample_threshold = 10;
  options.sample_size = 5;
  for (const std::string& name : SystemSelectors()) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok()) << name;
    auto first = selector.value()->Select(fx.vectors, options);
    auto second = selector.value()->Select(fx.vectors, options);
    ASSERT_TRUE(first.ok()) << name << ": " << first.status();
    ASSERT_TRUE(second.ok()) << name;
    EXPECT_EQ(first.value().tier, QualityTier::kSampled) << name;
    EXPECT_EQ(first.value().objective_gap, 0.75) << name;
    // Same seed, same draw, same answer — bit for bit.
    EXPECT_EQ(first.value().selections, second.value().selections) << name;
    EXPECT_EQ(first.value().objective, second.value().objective) << name;
    EXPECT_EQ(first.value().objective_gap, second.value().objective_gap)
        << name;
    // Selections carry REAL review indices of the full item.
    for (size_t index : first.value().selections[0]) {
      EXPECT_LT(index, fx.vectors.num_reviews(0)) << name;
    }
  }
}

TEST(ReviewSamplingTest, LosslessSamplePromotesBackToExact) {
  // 4 groups x 5 copies; an 18-of-20 sample misses at most 2 reviews,
  // so every group keeps >= 3 sampled members = min(c_g, m) — the
  // sample is provably lossless and the solve must promote to the FULL
  // system: tier exact, gap 0, bit-identical to the unsampled run.
  SamplingFixture fx(SamplingCorpus(/*num_patterns=*/4,
                                    /*copies_per_pattern=*/5));
  SelectorOptions sampled;
  sampled.m = 3;
  sampled.min_tier = QualityTier::kSampled;
  sampled.sample_threshold = 10;
  sampled.sample_size = 18;
  SelectorOptions unsampled;
  unsampled.m = 3;
  for (const std::string& name : SystemSelectors()) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok()) << name;
    auto promoted = selector.value()->Select(fx.vectors, sampled);
    auto baseline = selector.value()->Select(fx.vectors, unsampled);
    ASSERT_TRUE(promoted.ok()) << name << ": " << promoted.status();
    ASSERT_TRUE(baseline.ok()) << name;
    EXPECT_EQ(promoted.value().tier, QualityTier::kExact) << name;
    EXPECT_EQ(promoted.value().objective_gap, 0.0) << name;
    EXPECT_EQ(promoted.value().selections, baseline.value().selections)
        << name;
    EXPECT_EQ(promoted.value().objective, baseline.value().objective) << name;
  }
}

TEST(ReviewSamplingTest, ExactFloorOrSmallItemsNeverSample) {
  SamplingFixture fx(SamplingCorpus(/*num_patterns=*/20,
                                    /*copies_per_pattern=*/1));
  auto selector = MakeSelector("Crs");
  ASSERT_TRUE(selector.ok());

  SelectorOptions baseline;
  baseline.m = 3;
  auto exact = selector.value()->Select(fx.vectors, baseline);
  ASSERT_TRUE(exact.ok());

  // Sampling knobs set but the floor forbids the tier: ignored.
  SelectorOptions floored = baseline;
  floored.sample_threshold = 10;
  floored.sample_size = 5;
  auto unsampled = selector.value()->Select(fx.vectors, floored);
  ASSERT_TRUE(unsampled.ok());
  EXPECT_EQ(unsampled.value().tier, QualityTier::kExact);
  EXPECT_EQ(unsampled.value().selections, exact.value().selections);

  // Floor admits sampling but every item is at/below the threshold.
  SelectorOptions high_threshold = baseline;
  high_threshold.min_tier = QualityTier::kSampled;
  high_threshold.sample_threshold = 20;
  high_threshold.sample_size = 5;
  auto below = selector.value()->Select(fx.vectors, high_threshold);
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(below.value().tier, QualityTier::kExact);
  EXPECT_EQ(below.value().selections, exact.value().selections);
}

}  // namespace
}  // namespace comparesets
