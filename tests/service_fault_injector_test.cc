#include "service/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/timer.h"

namespace comparesets {
namespace {

TEST(FaultInjectorTest, NoFaultsConfiguredAlwaysPasses) {
  FaultInjector injector{FaultPlan{}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.Inject(FaultSite::kCacheLookup).ok());
    EXPECT_TRUE(injector.Inject(FaultSite::kSolve).ok());
    EXPECT_TRUE(injector.Inject(FaultSite::kCorpusSwap).ok());
  }
  EXPECT_EQ(injector.injected_errors(), 0u);
  EXPECT_EQ(injector.injected_delays(), 0u);
}

TEST(FaultInjectorTest, FailFirstIsExactThenClean) {
  FaultPlan plan;
  plan.solve.fail_first = 3;
  FaultInjector injector(plan);
  for (int i = 0; i < 3; ++i) {
    Status status = injector.Inject(FaultSite::kSolve);
    ASSERT_EQ(status.code(), StatusCode::kInternal) << i;
    EXPECT_NE(status.message().find("solve"), std::string::npos);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(injector.Inject(FaultSite::kSolve).ok());
  }
  EXPECT_EQ(injector.injected_errors(), 3u);
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameErrorSequence) {
  FaultPlan plan;
  plan.seed = 99;
  plan.cache_lookup.error_rate = 0.5;

  auto roll = [&plan] {
    FaultInjector injector(plan);
    std::vector<bool> sequence;
    for (int i = 0; i < 64; ++i) {
      sequence.push_back(!injector.Inject(FaultSite::kCacheLookup).ok());
    }
    return sequence;
  };
  std::vector<bool> baseline = roll();
  EXPECT_EQ(baseline, roll());

  plan.seed = 0x5eed5eedULL;
  EXPECT_NE(baseline, roll());  // The seed actually steers the dice.
}

TEST(FaultInjectorTest, SitesDrawFromIndependentStreams) {
  // Rolling one site a different number of times must not perturb the
  // fault sequence another site sees.
  FaultPlan plan;
  plan.seed = 7;
  plan.solve.error_rate = 0.5;
  plan.cache_lookup.error_rate = 0.5;

  auto solve_sequence = [&plan](int cache_rolls) {
    FaultInjector injector(plan);
    for (int i = 0; i < cache_rolls; ++i) {
      (void)injector.Inject(FaultSite::kCacheLookup).ok();
    }
    std::vector<bool> sequence;
    for (int i = 0; i < 64; ++i) {
      sequence.push_back(!injector.Inject(FaultSite::kSolve).ok());
    }
    return sequence;
  };
  EXPECT_EQ(solve_sequence(0), solve_sequence(17));
}

TEST(FaultInjectorTest, DelaysSleepAndCount) {
  FaultPlan plan;
  plan.corpus_swap.delay_rate = 1.0;
  plan.corpus_swap.delay_seconds = 0.01;
  FaultInjector injector(plan);

  Timer timer;
  EXPECT_TRUE(injector.Inject(FaultSite::kCorpusSwap).ok());
  EXPECT_GE(timer.ElapsedSeconds(), 0.009);
  EXPECT_EQ(injector.injected_delays(), 1u);
  EXPECT_EQ(injector.injected_errors(), 0u);
}

TEST(FaultInjectorTest, ErrorRateOneAlwaysFails) {
  FaultPlan plan;
  plan.solve.error_rate = 1.0;
  FaultInjector injector(plan);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.Inject(FaultSite::kSolve).code(),
              StatusCode::kInternal);
  }
  EXPECT_EQ(injector.injected_errors(), 10u);
}

}  // namespace
}  // namespace comparesets
