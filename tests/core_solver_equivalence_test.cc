// Randomized property tests pinning the sparse Gram/Cholesky solver
// path to the legacy dense reference: identical supports and selections,
// coefficients within 1e-10, on real CRS / CompaReSetS / CompaReSetS+
// systems. Also covers the non-convergence flag and cancellation landing
// mid-solve between refits.

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "core/design_matrix.h"
#include "core/integer_regression.h"
#include "core/selector.h"
#include "eval/runner.h"
#include "linalg/nnls.h"
#include "linalg/nomp.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace comparesets {
namespace {

Workload SmallWorkload() {
  RunnerConfig config;
  config.category = "Cellphone";
  config.num_products = 24;
  config.max_instances = 6;
  config.seed = 7;
  return Workload::BuildSynthetic(config).ValueOrDie();
}

/// Asserts SolveNomp (dense) and SolveNompGram agree on one system for
/// every sparsity budget up to `max_ell`.
void ExpectNompEquivalent(const DesignSystem& system, size_t max_ell,
                          const char* label) {
  Matrix dense = system.v.ToDense();
  for (size_t ell = 1; ell <= max_ell; ++ell) {
    auto reference = SolveNomp(dense, system.target, ell);
    auto gram = SolveNompGram(system.gram, ell);
    ASSERT_TRUE(reference.ok()) << label;
    ASSERT_TRUE(gram.ok()) << label;
    EXPECT_EQ(gram.value().support, reference.value().support)
        << label << " ell=" << ell;
    ASSERT_EQ(gram.value().x.size(), reference.value().x.size());
    for (size_t j = 0; j < gram.value().x.size(); ++j) {
      EXPECT_NEAR(gram.value().x[j], reference.value().x[j], 1e-10)
          << label << " ell=" << ell << " x[" << j << "]";
    }
    // Compare squared residuals: near an exact fit the Gram quadratic
    // form ‖y‖² − 2xᵀVᵀy + xᵀGx cancels to ~ε·‖y‖², which is √ε ≈ 1e-8
    // in the *norm* — the squared values still agree to ~1e-15.
    EXPECT_NEAR(gram.value().residual_norm * gram.value().residual_norm,
                reference.value().residual_norm *
                    reference.value().residual_norm,
                1e-12)
        << label << " ell=" << ell;
  }
}

TEST(SolverEquivalenceTest, NompGramMatchesDenseOnCrsSystems) {
  Workload workload = SmallWorkload();
  for (const InstanceVectors& vectors : workload.vectors()) {
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      DesignSystem system = BuildCrsSystem(vectors, item);
      ExpectNompEquivalent(system, 5, "crs");
    }
  }
}

TEST(SolverEquivalenceTest, NompGramMatchesDenseOnCompareSetsSystems) {
  Workload workload = SmallWorkload();
  for (const InstanceVectors& vectors : workload.vectors()) {
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      for (double lambda : {1.0, 0.5}) {
        DesignSystem system = BuildCompareSetsSystem(vectors, item, lambda);
        ExpectNompEquivalent(system, 5, "comparesets");
      }
    }
  }
}

TEST(SolverEquivalenceTest, NompGramMatchesDenseOnCompareSetsPlusSystems) {
  Workload workload = SmallWorkload();
  for (const InstanceVectors& vectors : workload.vectors()) {
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      // φ's of the other items' current selections: take a small prefix
      // selection per item, as the coordinate-descent sweep would.
      std::vector<Vector> other_phis;
      for (size_t t = 0; t < vectors.num_items(); ++t) {
        if (t == item) continue;
        Selection prefix;
        for (size_t j = 0; j < std::min<size_t>(3, vectors.num_reviews(t));
             ++j) {
          prefix.push_back(j);
        }
        other_phis.push_back(vectors.AspectOf(t, prefix));
      }
      DesignSystem system =
          BuildCompareSetsPlusSystem(vectors, item, 1.0, 0.1, other_phis);
      ExpectNompEquivalent(system, 4, "comparesets+");
    }
  }
}

TEST(SolverEquivalenceTest, NnlsGramMatchesDenseOnRandomProblems) {
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    size_t rows = 8 + static_cast<size_t>(trial) % 7;
    size_t cols = 3 + static_cast<size_t>(trial) % 5;
    Matrix a(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        if (rng.Bernoulli(0.5)) a(r, c) = rng.UniformDouble(0.0, 2.0);
      }
    }
    Vector b(rows);
    for (size_t r = 0; r < rows; ++r) b[r] = rng.Normal();

    Matrix gram(cols, cols);
    for (size_t i = 0; i < cols; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        gram(i, j) = a.Column(i).Dot(a.Column(j));
      }
    }
    auto reference = SolveNnls(a, b);
    auto fast = SolveNnlsGram(gram, a.MultiplyTranspose(b), b.Dot(b));
    ASSERT_TRUE(reference.ok()) << "trial " << trial;
    ASSERT_TRUE(fast.ok()) << "trial " << trial;
    EXPECT_TRUE(reference.value().converged);
    EXPECT_TRUE(fast.value().converged);
    ASSERT_EQ(fast.value().x.size(), cols);
    for (size_t j = 0; j < cols; ++j) {
      EXPECT_NEAR(fast.value().x[j], reference.value().x[j], 1e-10)
          << "trial " << trial << " x[" << j << "]";
    }
    EXPECT_NEAR(fast.value().residual_norm, reference.value().residual_norm,
                1e-8)
        << "trial " << trial;
  }
}

TEST(SolverEquivalenceTest, IntegerRegressionBackendsPickIdenticalSelections) {
  Workload workload = SmallWorkload();
  TrueCostFn cost = [](const Selection& selection) {
    double sum = 0.0;  // Any deterministic stand-in objective works here.
    for (size_t j : selection) sum += 1.0 / (1.0 + static_cast<double>(j));
    return sum;
  };
  SolverOptions dense;
  dense.backend = SolverBackend::kDenseReference;
  for (const InstanceVectors& vectors : workload.vectors()) {
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      DesignSystem system = BuildCompareSetsSystem(vectors, item, 1.0);
      auto gram_run = SolveIntegerRegression(system, 3, cost);
      auto dense_run = SolveIntegerRegression(system, 3, cost, nullptr, dense);
      ASSERT_TRUE(gram_run.ok());
      ASSERT_TRUE(dense_run.ok());
      EXPECT_EQ(gram_run.value().selection, dense_run.value().selection);
      EXPECT_DOUBLE_EQ(gram_run.value().cost, dense_run.value().cost);
    }
  }
}

TEST(SolverEquivalenceTest, SelectorsMatchAcrossBackends) {
  Workload workload = SmallWorkload();
  for (const char* name : {"Crs", "CompaReSetS", "CompaReSetS+"}) {
    auto selector = MakeSelector(name).ValueOrDie();
    for (const InstanceVectors& vectors : workload.vectors()) {
      SelectorOptions options;
      auto gram_run = selector->Select(vectors, options);
      options.dense_reference_solver = true;
      auto dense_run = selector->Select(vectors, options);
      ASSERT_TRUE(gram_run.ok()) << name;
      ASSERT_TRUE(dense_run.ok()) << name;
      EXPECT_EQ(gram_run.value().selections, dense_run.value().selections)
          << name;
      EXPECT_DOUBLE_EQ(gram_run.value().objective,
                       dense_run.value().objective)
          << name;
    }
  }
}

TEST(SolverEquivalenceTest, BothBackendsFlagAndCountNonConvergence) {
  // x* = b on the identity needs one outer iteration per variable, so a
  // cap of 1 must trip on both implementations.
  Matrix a(3, 3);
  a(0, 0) = a(1, 1) = a(2, 2) = 1.0;
  Vector b(3);
  b[0] = 1.0;
  b[1] = 2.0;
  b[2] = 3.0;

  std::atomic<uint64_t> nonconverged{0};
  ExecControl control;
  control.nnls_nonconverged = &nonconverged;
  NnlsOptions options;
  options.max_iterations = 1;
  options.control = &control;

  auto dense = SolveNnls(a, b, options);
  ASSERT_TRUE(dense.ok());
  EXPECT_FALSE(dense.value().converged);
  EXPECT_EQ(nonconverged.load(), 1u);

  auto gram = SolveNnlsGram(a, b, b.Dot(b), options);  // AᵀA = I, Aᵀb = b.
  ASSERT_TRUE(gram.ok());
  EXPECT_FALSE(gram.value().converged);
  EXPECT_EQ(nonconverged.load(), 2u);

  options.max_iterations = 0;  // Default cap: both converge and don't count.
  EXPECT_TRUE(SolveNnls(a, b, options).value().converged);
  EXPECT_TRUE(SolveNnlsGram(a, b, b.Dot(b), options).value().converged);
  EXPECT_EQ(nonconverged.load(), 2u);
}

TEST(SolverEquivalenceTest, CancellationLandsBetweenRefits) {
  // Cancel from inside the true-cost callback: the token flips after the
  // ℓ = 1 round has produced a candidate, so the next control check —
  // inside the ℓ = 2 NOMP/NNLS refit machinery — must abort the solve.
  Workload workload = SmallWorkload();
  const InstanceVectors& vectors = workload.vectors().front();
  DesignSystem system = BuildCompareSetsSystem(vectors, 0, 1.0);

  CancelToken token;
  std::atomic<uint64_t> iterations{0};
  ExecControl control;
  control.cancel = &token;
  control.iterations = &iterations;

  TrueCostFn cancelling_cost = [&token](const Selection& selection) {
    token.Cancel();
    return static_cast<double>(selection.size());
  };
  auto result = SolveIntegerRegression(system, 4, cancelling_cost, &control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_GT(iterations.load(), 0u);
}

TEST(SolverEquivalenceTest, GramSolversHonorPreCancelledControl) {
  Workload workload = SmallWorkload();
  const InstanceVectors& vectors = workload.vectors().front();
  DesignSystem system = BuildCompareSetsSystem(vectors, 0, 1.0);

  CancelToken token;
  token.Cancel();
  ExecControl control;
  control.cancel = &token;

  EXPECT_EQ(SolveNompGram(system.gram, 3, &control).status().code(),
            StatusCode::kCancelled);
  NnlsOptions options;
  options.control = &control;
  EXPECT_EQ(SolveNnlsGram(system.gram.gram, system.gram.vty,
                          system.gram.target_norm2, options)
                .status()
                .code(),
            StatusCode::kCancelled);
}

}  // namespace
}  // namespace comparesets
