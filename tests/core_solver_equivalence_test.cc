// Randomized property tests pinning the sparse Gram/Cholesky solver
// path to the legacy dense reference: identical supports and selections,
// coefficients within 1e-10, on real CRS / CompaReSetS / CompaReSetS+
// systems. Also covers the non-convergence flag and cancellation landing
// mid-solve between refits.

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "core/design_matrix.h"
#include "core/integer_regression.h"
#include "core/selector.h"
#include "eval/runner.h"
#include "linalg/nnls.h"
#include "linalg/nomp.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace comparesets {
namespace {

Workload SmallWorkload() {
  RunnerConfig config;
  config.category = "Cellphone";
  config.num_products = 24;
  config.max_instances = 6;
  config.seed = 7;
  return Workload::BuildSynthetic(config).ValueOrDie();
}

/// Asserts SolveNomp (dense) and SolveNompGram agree on one system for
/// every sparsity budget up to `max_ell`.
void ExpectNompEquivalent(const DesignSystem& system, size_t max_ell,
                          const char* label) {
  Matrix dense = system.v.ToDense();
  for (size_t ell = 1; ell <= max_ell; ++ell) {
    auto reference = SolveNomp(dense, system.target, ell);
    auto gram = SolveNompGram(system.gram, ell);
    ASSERT_TRUE(reference.ok()) << label;
    ASSERT_TRUE(gram.ok()) << label;
    EXPECT_EQ(gram.value().support, reference.value().support)
        << label << " ell=" << ell;
    ASSERT_EQ(gram.value().x.size(), reference.value().x.size());
    for (size_t j = 0; j < gram.value().x.size(); ++j) {
      EXPECT_NEAR(gram.value().x[j], reference.value().x[j], 1e-10)
          << label << " ell=" << ell << " x[" << j << "]";
    }
    // Compare squared residuals: near an exact fit the Gram quadratic
    // form ‖y‖² − 2xᵀVᵀy + xᵀGx cancels to ~ε·‖y‖², which is √ε ≈ 1e-8
    // in the *norm* — the squared values still agree to ~1e-15.
    EXPECT_NEAR(gram.value().residual_norm * gram.value().residual_norm,
                reference.value().residual_norm *
                    reference.value().residual_norm,
                1e-12)
        << label << " ell=" << ell;
  }
}

TEST(SolverEquivalenceTest, NompGramMatchesDenseOnCrsSystems) {
  Workload workload = SmallWorkload();
  for (const InstanceVectors& vectors : workload.vectors()) {
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      DesignSystem system = BuildCrsSystem(vectors, item);
      ExpectNompEquivalent(system, 5, "crs");
    }
  }
}

TEST(SolverEquivalenceTest, NompGramMatchesDenseOnCompareSetsSystems) {
  Workload workload = SmallWorkload();
  for (const InstanceVectors& vectors : workload.vectors()) {
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      for (double lambda : {1.0, 0.5}) {
        DesignSystem system = BuildCompareSetsSystem(vectors, item, lambda);
        ExpectNompEquivalent(system, 5, "comparesets");
      }
    }
  }
}

TEST(SolverEquivalenceTest, NompGramMatchesDenseOnCompareSetsPlusSystems) {
  Workload workload = SmallWorkload();
  for (const InstanceVectors& vectors : workload.vectors()) {
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      // φ's of the other items' current selections: take a small prefix
      // selection per item, as the coordinate-descent sweep would.
      std::vector<Vector> other_phis;
      for (size_t t = 0; t < vectors.num_items(); ++t) {
        if (t == item) continue;
        Selection prefix;
        for (size_t j = 0; j < std::min<size_t>(3, vectors.num_reviews(t));
             ++j) {
          prefix.push_back(j);
        }
        other_phis.push_back(vectors.AspectOf(t, prefix));
      }
      DesignSystem system =
          BuildCompareSetsPlusSystem(vectors, item, 1.0, 0.1, other_phis);
      ExpectNompEquivalent(system, 4, "comparesets+");
    }
  }
}

TEST(SolverEquivalenceTest, NnlsGramMatchesDenseOnRandomProblems) {
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    size_t rows = 8 + static_cast<size_t>(trial) % 7;
    size_t cols = 3 + static_cast<size_t>(trial) % 5;
    Matrix a(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        if (rng.Bernoulli(0.5)) a(r, c) = rng.UniformDouble(0.0, 2.0);
      }
    }
    Vector b(rows);
    for (size_t r = 0; r < rows; ++r) b[r] = rng.Normal();

    Matrix gram(cols, cols);
    for (size_t i = 0; i < cols; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        gram(i, j) = a.Column(i).Dot(a.Column(j));
      }
    }
    auto reference = SolveNnls(a, b);
    auto fast = SolveNnlsGram(gram, a.MultiplyTranspose(b), b.Dot(b));
    ASSERT_TRUE(reference.ok()) << "trial " << trial;
    ASSERT_TRUE(fast.ok()) << "trial " << trial;
    EXPECT_TRUE(reference.value().converged);
    EXPECT_TRUE(fast.value().converged);
    ASSERT_EQ(fast.value().x.size(), cols);
    for (size_t j = 0; j < cols; ++j) {
      EXPECT_NEAR(fast.value().x[j], reference.value().x[j], 1e-10)
          << "trial " << trial << " x[" << j << "]";
    }
    EXPECT_NEAR(fast.value().residual_norm, reference.value().residual_norm,
                1e-8)
        << "trial " << trial;
  }
}

TEST(SolverEquivalenceTest, IntegerRegressionBackendsPickIdenticalSelections) {
  Workload workload = SmallWorkload();
  TrueCostFn cost = [](const Selection& selection) {
    double sum = 0.0;  // Any deterministic stand-in objective works here.
    for (size_t j : selection) sum += 1.0 / (1.0 + static_cast<double>(j));
    return sum;
  };
  SolverOptions dense;
  dense.backend = SolverBackend::kDenseReference;
  for (const InstanceVectors& vectors : workload.vectors()) {
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      DesignSystem system = BuildCompareSetsSystem(vectors, item, 1.0);
      auto gram_run = SolveIntegerRegression(system, 3, cost);
      auto dense_run = SolveIntegerRegression(system, 3, cost, nullptr, dense);
      ASSERT_TRUE(gram_run.ok());
      ASSERT_TRUE(dense_run.ok());
      EXPECT_EQ(gram_run.value().selection, dense_run.value().selection);
      EXPECT_DOUBLE_EQ(gram_run.value().cost, dense_run.value().cost);
    }
  }
}

TEST(SolverEquivalenceTest, SelectorsMatchAcrossBackends) {
  Workload workload = SmallWorkload();
  for (const char* name : {"Crs", "CompaReSetS", "CompaReSetS+"}) {
    auto selector = MakeSelector(name).ValueOrDie();
    for (const InstanceVectors& vectors : workload.vectors()) {
      SelectorOptions options;
      auto gram_run = selector->Select(vectors, options);
      options.dense_reference_solver = true;
      auto dense_run = selector->Select(vectors, options);
      ASSERT_TRUE(gram_run.ok()) << name;
      ASSERT_TRUE(dense_run.ok()) << name;
      EXPECT_EQ(gram_run.value().selections, dense_run.value().selections)
          << name;
      EXPECT_DOUBLE_EQ(gram_run.value().objective,
                       dense_run.value().objective)
          << name;
    }
  }
}

TEST(SolverEquivalenceTest, BothBackendsFlagAndCountNonConvergence) {
  // x* = b on the identity needs one outer iteration per variable, so a
  // cap of 1 must trip on both implementations.
  Matrix a(3, 3);
  a(0, 0) = a(1, 1) = a(2, 2) = 1.0;
  Vector b(3);
  b[0] = 1.0;
  b[1] = 2.0;
  b[2] = 3.0;

  std::atomic<uint64_t> nonconverged{0};
  ExecControl control;
  control.nnls_nonconverged = &nonconverged;
  NnlsOptions options;
  options.max_iterations = 1;
  options.control = &control;

  auto dense = SolveNnls(a, b, options);
  ASSERT_TRUE(dense.ok());
  EXPECT_FALSE(dense.value().converged);
  EXPECT_EQ(nonconverged.load(), 1u);

  auto gram = SolveNnlsGram(a, b, b.Dot(b), options);  // AᵀA = I, Aᵀb = b.
  ASSERT_TRUE(gram.ok());
  EXPECT_FALSE(gram.value().converged);
  EXPECT_EQ(nonconverged.load(), 2u);

  options.max_iterations = 0;  // Default cap: both converge and don't count.
  EXPECT_TRUE(SolveNnls(a, b, options).value().converged);
  EXPECT_TRUE(SolveNnlsGram(a, b, b.Dot(b), options).value().converged);
  EXPECT_EQ(nonconverged.load(), 2u);
}

TEST(SolverEquivalenceTest, CancellationLandsBetweenRefits) {
  // Cancel from inside the true-cost callback: the token flips after the
  // ℓ = 1 round has produced a candidate, so the next control check —
  // inside the ℓ = 2 NOMP/NNLS refit machinery — must abort the solve.
  Workload workload = SmallWorkload();
  const InstanceVectors& vectors = workload.vectors().front();
  DesignSystem system = BuildCompareSetsSystem(vectors, 0, 1.0);

  CancelToken token;
  std::atomic<uint64_t> iterations{0};
  ExecControl control;
  control.cancel = &token;
  control.iterations = &iterations;

  TrueCostFn cancelling_cost = [&token](const Selection& selection) {
    token.Cancel();
    return static_cast<double>(selection.size());
  };
  auto result = SolveIntegerRegression(system, 4, cancelling_cost, &control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_GT(iterations.load(), 0u);
}

/// Exact (bitwise) equality of two GramSystems.
void ExpectGramBitIdentical(const GramSystem& a, const GramSystem& b,
                            const char* label) {
  ASSERT_EQ(a.cols(), b.cols()) << label;
  for (size_t i = 0; i < a.cols(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a.gram(i, j), b.gram(i, j))
          << label << " G(" << i << "," << j << ")";
    }
  }
  EXPECT_EQ(a.vty, b.vty) << label << " vty";
  EXPECT_EQ(a.target_norm2, b.target_norm2) << label << " ||y||^2";
  EXPECT_EQ(a.col_norms, b.col_norms) << label << " col_norms";
}

TEST(SolverEquivalenceTest, NompSweepMatchesPerBudgetCallsBitwise) {
  // The batched sweep must reproduce each per-ℓ pursuit EXACTLY — same
  // bits, not just same supports — since the engine's batch window
  // swaps one for the other behind callers' backs.
  Workload workload = SmallWorkload();
  for (const InstanceVectors& vectors : workload.vectors()) {
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      DesignSystem system = BuildCompareSetsSystem(vectors, item, 1.0);
      const size_t max_ell = std::min<size_t>(5, system.gram.cols());
      auto sweep = SolveNompGramSweep(system.gram, max_ell);
      ASSERT_TRUE(sweep.ok());
      ASSERT_EQ(sweep.value().size(), max_ell);
      for (size_t ell = 1; ell <= max_ell; ++ell) {
        auto solo = SolveNompGram(system.gram, ell);
        ASSERT_TRUE(solo.ok()) << "ell=" << ell;
        const NompResult& snap = sweep.value()[ell - 1];
        EXPECT_EQ(snap.support, solo.value().support) << "ell=" << ell;
        EXPECT_EQ(snap.x, solo.value().x) << "ell=" << ell;
        EXPECT_EQ(snap.residual_norm, solo.value().residual_norm)
            << "ell=" << ell;
      }
    }
  }
}

TEST(SolverEquivalenceTest, GramBatchMatchesSoloBuildsBitwise) {
  Workload workload = SmallWorkload();
  const InstanceVectors& vectors = workload.vectors().front();

  // Distinct systems per item, plus targets repeated against item 0's
  // matrix (the shared-V fast path must still match a solo build).
  std::vector<DesignSystem> skeletons;
  for (size_t item = 0; item < vectors.num_items(); ++item) {
    skeletons.push_back(BuildCompareSetsSystem(vectors, item, 0.5));
  }
  Vector alt_target = skeletons[0].target;
  for (size_t i = 0; i < alt_target.size(); ++i) {
    alt_target[i] += 0.25 * static_cast<double>(i % 3);
  }

  std::vector<GramBuildItem> items;
  for (const DesignSystem& s : skeletons) {
    items.push_back({&s.v, &s.target});
  }
  items.push_back({&skeletons[0].v, &alt_target});   // shared-V, new target
  items.push_back({&skeletons[0].v, &skeletons[0].target});  // exact repeat

  std::vector<GramSystem> batch = BuildGramSystemBatch(items);
  ASSERT_EQ(batch.size(), items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    GramSystem solo = BuildGramSystem(*items[k].v, *items[k].target);
    ExpectGramBitIdentical(batch[k], solo, "batch item");
  }
}

TEST(SolverEquivalenceTest, NnlsGramBatchMatchesSequentialSolvesBitwise) {
  Workload workload = SmallWorkload();
  const InstanceVectors& vectors = workload.vectors().front();
  DesignSystem base = BuildCompareSetsSystem(vectors, 0, 1.0);

  // Several right-hand sides against one Gram: the real targets of a
  // few items (re-projected through base's matrix), plus an exact
  // duplicate that must be served by the batch's memo path.
  std::vector<Vector> vtys;
  std::vector<double> norms;
  vtys.push_back(base.gram.vty);
  norms.push_back(base.gram.target_norm2);
  for (double shift : {0.5, -0.25, 2.0}) {
    Vector vty = base.gram.vty;
    for (size_t j = 0; j < vty.size(); ++j) {
      vty[j] += shift * static_cast<double>(j + 1) / 7.0;
    }
    vtys.push_back(std::move(vty));
    norms.push_back(base.gram.target_norm2 + shift * shift);
  }
  vtys.push_back(vtys[1]);  // Bit-exact duplicate of problem 1.
  norms.push_back(norms[1]);

  std::vector<NnlsGramProblem> problems;
  for (size_t k = 0; k < vtys.size(); ++k) {
    problems.push_back({&vtys[k], norms[k]});
  }
  auto batch = SolveNnlsGramBatch(base.gram.gram, problems);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), problems.size());
  for (size_t k = 0; k < problems.size(); ++k) {
    auto solo = SolveNnlsGram(base.gram.gram, vtys[k], norms[k]);
    ASSERT_TRUE(solo.ok()) << "problem " << k;
    EXPECT_EQ(batch.value()[k].x, solo.value().x) << "problem " << k;
    EXPECT_EQ(batch.value()[k].residual_norm, solo.value().residual_norm)
        << "problem " << k;
    EXPECT_EQ(batch.value()[k].iterations, solo.value().iterations)
        << "problem " << k;
    EXPECT_EQ(batch.value()[k].converged, solo.value().converged)
        << "problem " << k;
  }
}

TEST(SolverEquivalenceTest, RefreshDesignTargetMatchesRebuildBitwise) {
  // The CompaReSetS+ sweep refreshes each item's target in place across
  // sync rounds; a refreshed system must be indistinguishable — bitwise
  // — from rebuilding with the new φ blocks.
  Workload workload = SmallWorkload();
  for (const InstanceVectors& vectors : workload.vectors()) {
    if (vectors.num_items() < 2) continue;
    auto phis_with_prefix = [&](size_t item, size_t take) {
      std::vector<Vector> phis;
      for (size_t t = 0; t < vectors.num_items(); ++t) {
        if (t == item) continue;
        Selection prefix;
        for (size_t j = 0; j < std::min<size_t>(take, vectors.num_reviews(t));
             ++j) {
          prefix.push_back(j);
        }
        phis.push_back(vectors.AspectOf(t, prefix));
      }
      return phis;
    };
    const size_t item = 0;
    std::vector<Vector> round0 = phis_with_prefix(item, 2);
    std::vector<Vector> round1 = phis_with_prefix(item, 3);

    DesignSystem refreshed =
        BuildCompareSetsPlusSystem(vectors, item, 1.0, 0.1, round0);
    RefreshDesignTarget(
        &refreshed, BuildCompareSetsPlusTarget(vectors, item, 1.0, 0.1, round1));

    DesignSystem rebuilt =
        BuildCompareSetsPlusSystem(vectors, item, 1.0, 0.1, round1);
    EXPECT_EQ(refreshed.target, rebuilt.target);
    EXPECT_EQ(refreshed.dup_counts, rebuilt.dup_counts);
    EXPECT_EQ(refreshed.group_reviews, rebuilt.group_reviews);
    ExpectGramBitIdentical(refreshed.gram, rebuilt.gram, "refresh");
  }
}

TEST(SolverEquivalenceTest, GramSolversHonorPreCancelledControl) {
  Workload workload = SmallWorkload();
  const InstanceVectors& vectors = workload.vectors().front();
  DesignSystem system = BuildCompareSetsSystem(vectors, 0, 1.0);

  CancelToken token;
  token.Cancel();
  ExecControl control;
  control.cancel = &token;

  EXPECT_EQ(SolveNompGram(system.gram, 3, &control).status().code(),
            StatusCode::kCancelled);
  NnlsOptions options;
  options.control = &control;
  EXPECT_EQ(SolveNnlsGram(system.gram.gram, system.gram.vty,
                          system.gram.target_norm2, options)
                .status()
                .code(),
            StatusCode::kCancelled);
}

}  // namespace
}  // namespace comparesets
