#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <set>

#include "data/statistics.h"

namespace comparesets {
namespace {

TEST(VocabularyTest, ThreeCategoriesAvailable) {
  EXPECT_EQ(CellphoneVocabulary().name, "Cellphone");
  EXPECT_EQ(ToyVocabulary().name, "Toy");
  EXPECT_EQ(ClothingVocabulary().name, "Clothing");
  for (const CategoryVocabulary* vocab :
       {&CellphoneVocabulary(), &ToyVocabulary(), &ClothingVocabulary()}) {
    EXPECT_GE(vocab->aspects.size(), 20u) << vocab->name;
    EXPECT_GE(vocab->fillers.size(), 8u) << vocab->name;
  }
}

TEST(VocabularyTest, LookupIsCaseInsensitive) {
  EXPECT_TRUE(VocabularyByName("cellphone").ok());
  EXPECT_TRUE(VocabularyByName("TOY").ok());
  EXPECT_TRUE(VocabularyByName("Clothing").ok());
  EXPECT_FALSE(VocabularyByName("electronics").ok());
}

TEST(VocabularyTest, AspectsDistinctWithinCategory) {
  for (const CategoryVocabulary* vocab :
       {&CellphoneVocabulary(), &ToyVocabulary(), &ClothingVocabulary()}) {
    std::set<std::string> unique(vocab->aspects.begin(),
                                 vocab->aspects.end());
    EXPECT_EQ(unique.size(), vocab->aspects.size()) << vocab->name;
  }
}

TEST(DefaultConfigTest, MatchesTable2Averages) {
  auto cellphone = DefaultConfig("Cellphone", 100);
  ASSERT_TRUE(cellphone.ok());
  EXPECT_NEAR(cellphone.value().avg_reviews_per_product, 18.64, 1e-9);
  EXPECT_NEAR(cellphone.value().avg_comparison_products, 25.57, 1e-9);
  auto toy = DefaultConfig("Toy", 100);
  ASSERT_TRUE(toy.ok());
  EXPECT_NEAR(toy.value().avg_reviews_per_product, 14.06, 1e-9);
  EXPECT_NEAR(toy.value().avg_comparison_products, 34.33, 1e-9);
  auto clothing = DefaultConfig("Clothing", 100);
  ASSERT_TRUE(clothing.ok());
  EXPECT_NEAR(clothing.value().avg_reviews_per_product, 12.10, 1e-9);
  EXPECT_NEAR(clothing.value().avg_comparison_products, 12.03, 1e-9);
}

class GeneratorTest : public ::testing::Test {
 protected:
  static Corpus Generate(size_t products = 120, uint64_t seed = 42) {
    SyntheticConfig config = DefaultConfig("Cellphone", products).ValueOrDie();
    config.seed = seed;
    return GenerateCorpus(config).ValueOrDie();
  }
};

TEST_F(GeneratorTest, ProducesRequestedProductCount) {
  Corpus corpus = Generate(120);
  EXPECT_EQ(corpus.num_products(), 120u);
  EXPECT_EQ(corpus.name(), "Cellphone");
  EXPECT_EQ(corpus.num_aspects(), CellphoneVocabulary().aspects.size());
}

TEST_F(GeneratorTest, DeterministicUnderSeed) {
  Corpus a = Generate(60, 7);
  Corpus b = Generate(60, 7);
  ASSERT_EQ(a.num_reviews(), b.num_reviews());
  for (size_t p = 0; p < a.num_products(); ++p) {
    ASSERT_EQ(a.products()[p].id, b.products()[p].id);
    ASSERT_EQ(a.products()[p].reviews.size(), b.products()[p].reviews.size());
    for (size_t r = 0; r < a.products()[p].reviews.size(); ++r) {
      EXPECT_EQ(a.products()[p].reviews[r].text,
                b.products()[p].reviews[r].text);
    }
  }
}

TEST_F(GeneratorTest, SeedsChangeTheCorpus) {
  Corpus a = Generate(60, 7);
  Corpus b = Generate(60, 8);
  EXPECT_NE(a.num_reviews(), b.num_reviews());
}

TEST_F(GeneratorTest, EveryProductHasAtLeastTwoReviews) {
  Corpus corpus = Generate();
  for (const Product& product : corpus.products()) {
    EXPECT_GE(product.reviews.size(), 2u) << product.id;
  }
}

TEST_F(GeneratorTest, ReviewsCarryConsistentAnnotationsAndText) {
  Corpus corpus = Generate();
  const auto& aspects = CellphoneVocabulary().aspects;
  size_t checked = 0;
  for (const Product& product : corpus.products()) {
    for (const Review& review : product.reviews) {
      EXPECT_FALSE(review.opinions.empty()) << review.id;
      EXPECT_FALSE(review.text.empty()) << review.id;
      EXPECT_GE(review.rating, 1.0);
      EXPECT_LE(review.rating, 5.0);
      for (const OpinionMention& mention : review.opinions) {
        ASSERT_GE(mention.aspect, 0);
        ASSERT_LT(static_cast<size_t>(mention.aspect), aspects.size());
        // The aspect word must actually appear in the surface text —
        // this coupling is what makes ROUGE reward aspect alignment.
        EXPECT_NE(review.text.find(aspects[mention.aspect]),
                  std::string::npos)
            << review.id << ": " << review.text;
        EXPECT_GT(mention.strength, 0.0);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST_F(GeneratorTest, AverageReviewsNearConfiguredMean) {
  Corpus corpus = Generate(400);
  double avg = static_cast<double>(corpus.num_reviews()) /
               corpus.num_products();
  EXPECT_NEAR(avg, 18.64, 4.0);  // Geometric tail: generous tolerance.
}

TEST_F(GeneratorTest, AlsoBoughtLinksResolveWithinCorpus) {
  Corpus corpus = Generate();
  size_t total_links = 0;
  for (const Product& product : corpus.products()) {
    for (const std::string& other : product.also_bought) {
      EXPECT_NE(corpus.Find(other), nullptr) << product.id << " -> " << other;
      EXPECT_NE(other, product.id);
      ++total_links;
    }
  }
  EXPECT_GT(total_links, corpus.num_products());  // Rich link structure.
}

TEST_F(GeneratorTest, InstancesBuildable) {
  Corpus corpus = Generate();
  auto instances = corpus.BuildInstances();
  EXPECT_GT(instances.size(), corpus.num_products() / 2);
  DatasetStatistics stats = ComputeStatistics(corpus);
  EXPECT_GT(stats.avg_comparison_products, 5.0);
  EXPECT_EQ(stats.num_products, corpus.num_products());
  EXPECT_FALSE(stats.ToString().empty());
}

TEST_F(GeneratorTest, ReviewCountsHeavyTailed) {
  // Figure 6 needs spread across review-count buckets.
  Corpus corpus = Generate(400);
  size_t small = 0;
  size_t large = 0;
  for (const Product& product : corpus.products()) {
    if (product.reviews.size() <= 5) ++small;
    if (product.reviews.size() >= 30) ++large;
  }
  EXPECT_GT(small, 10u);
  EXPECT_GT(large, 10u);
}

TEST(GeneratorConfigTest, InvalidConfigsRejected) {
  SyntheticConfig config;
  config.num_products = 0;
  EXPECT_FALSE(GenerateCorpus(config).ok());
  config.num_products = 10;
  config.avg_reviews_per_product = 1.0;
  EXPECT_FALSE(GenerateCorpus(config).ok());
  config.avg_reviews_per_product = 10.0;
  config.category = "bogus";
  EXPECT_FALSE(GenerateCorpus(config).ok());
}

TEST(GeneratorCategoriesTest, AllThreeCategoriesGenerate) {
  for (const char* category : {"Cellphone", "Toy", "Clothing"}) {
    SyntheticConfig config = DefaultConfig(category, 60).ValueOrDie();
    auto corpus = GenerateCorpus(config);
    ASSERT_TRUE(corpus.ok()) << category;
    EXPECT_EQ(corpus.value().num_products(), 60u);
    EXPECT_GT(corpus.value().BuildInstances().size(), 0u) << category;
  }
}

}  // namespace
}  // namespace comparesets
