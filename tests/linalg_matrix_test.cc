#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace comparesets {
namespace {

Matrix Make2x3() {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(0, 2) = 3.0;
  m(1, 0) = 4.0;
  m(1, 1) = 5.0;
  m(1, 2) = 6.0;
  return m;
}

TEST(MatrixTest, ShapeAndAccess) {
  Matrix m = Make2x3();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_EQ(Matrix().rows(), 0u);
}

TEST(MatrixTest, RowAndColumnExtraction) {
  Matrix m = Make2x3();
  EXPECT_TRUE(m.Row(0).AlmostEquals(Vector{1.0, 2.0, 3.0}));
  EXPECT_TRUE(m.Column(1).AlmostEquals(Vector{2.0, 5.0}));
}

TEST(MatrixTest, SetColumn) {
  Matrix m = Make2x3();
  m.SetColumn(2, Vector{-1.0, -2.0});
  EXPECT_DOUBLE_EQ(m(0, 2), -1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), -2.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix m = Make2x3();
  Vector y = m.Multiply({1.0, 0.0, -1.0});
  EXPECT_TRUE(y.AlmostEquals(Vector{-2.0, -2.0}));
}

TEST(MatrixTest, MultiplyTranspose) {
  Matrix m = Make2x3();
  Vector y = m.MultiplyTranspose({1.0, 1.0});
  EXPECT_TRUE(y.AlmostEquals(Vector{5.0, 7.0, 9.0}));
}

TEST(MatrixTest, MultiplyTransposeMatchesExplicitTranspose) {
  Matrix m = Make2x3();
  Vector x = {0.5, -2.0};
  Vector direct = m.MultiplyTranspose(x);
  Vector via_transpose = m.Transposed().Multiply(x);
  EXPECT_TRUE(direct.AlmostEquals(via_transpose));
}

TEST(MatrixTest, SelectColumns) {
  Matrix m = Make2x3();
  Matrix sub = m.SelectColumns({2, 0});
  EXPECT_EQ(sub.cols(), 2u);
  EXPECT_TRUE(sub.Column(0).AlmostEquals(Vector{3.0, 6.0}));
  EXPECT_TRUE(sub.Column(1).AlmostEquals(Vector{1.0, 4.0}));
}

TEST(MatrixTest, SelectColumnsAllowsRepeats) {
  Matrix m = Make2x3();
  Matrix sub = m.SelectColumns({1, 1});
  EXPECT_TRUE(sub.Column(0).AlmostEquals(sub.Column(1)));
}

TEST(MatrixTest, TransposedShape) {
  Matrix t = Make2x3().Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, Equality) {
  EXPECT_TRUE(Make2x3() == Make2x3());
  Matrix other = Make2x3();
  other(0, 0) = 9.0;
  EXPECT_FALSE(Make2x3() == other);
}

}  // namespace
}  // namespace comparesets
