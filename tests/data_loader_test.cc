#include "data/loader.h"

#include <gtest/gtest.h>

namespace comparesets {
namespace {

// Small Amazon-layout fixture: 3 products, ratings correlated with the
// "battery"/"strap" terms so aspect mining finds them.
std::string ReviewsJsonl() {
  std::string out;
  auto add = [&](const char* asin, const char* reviewer, const char* text,
                 double rating) {
    out += "{\"asin\": \"";
    out += asin;
    out += "\", \"reviewerID\": \"";
    out += reviewer;
    out += "\", \"reviewText\": \"";
    out += text;
    out += "\", \"overall\": ";
    out += std::to_string(rating);
    out += "}\n";
  };
  for (int i = 0; i < 4; ++i) {
    std::string reviewer = "U" + std::to_string(i);
    add("A1", reviewer.c_str(),
        i % 2 == 0 ? "The battery is great and lasts long"
                   : "The battery is terrible and the strap broke",
        i % 2 == 0 ? 5.0 : 1.0);
    add("A2", reviewer.c_str(),
        i % 2 == 0 ? "Great battery and a comfortable strap"
                   : "Bad battery, and the strap feels flimsy",
        i % 2 == 0 ? 5.0 : 2.0);
    add("A3", reviewer.c_str(),
        i % 2 == 0 ? "The strap is great for daily use"
                   : "The strap is awful and the battery died",
        i % 2 == 0 ? 4.0 : 1.0);
  }
  return out;
}

std::string MetadataJsonl() {
  return R"({"asin": "A1", "title": "Product One", "related": {"also_bought": ["A2", "A3"]}})"
         "\n"
         R"({"asin": "A2", "title": "Product Two", "related": {"also_bought": ["A1"]}})"
         "\n"
         R"({"asin": "A3", "title": "Product Three"})"
         "\n";
}

LoaderOptions SmallOptions() {
  LoaderOptions options;
  options.mining.min_review_frequency = 2;
  options.mining.max_candidates = 100;
  options.mining.max_aspects = 10;
  return options;
}

TEST(LoaderTest, LoadsProductsReviewsAndMetadata) {
  auto corpus = LoadAmazonCorpus("mini", ReviewsJsonl(), MetadataJsonl(),
                                 SmallOptions());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_EQ(corpus.value().num_products(), 3u);
  EXPECT_EQ(corpus.value().num_reviews(), 12u);
  EXPECT_EQ(corpus.value().num_reviewers(), 4u);
  const Product* a1 = corpus.value().Find("A1");
  ASSERT_NE(a1, nullptr);
  EXPECT_EQ(a1->title, "Product One");
  EXPECT_EQ(a1->also_bought, (std::vector<std::string>{"A2", "A3"}));
}

TEST(LoaderTest, AnnotationsProducedFromText) {
  auto corpus = LoadAmazonCorpus("mini", ReviewsJsonl(), MetadataJsonl(),
                                 SmallOptions());
  ASSERT_TRUE(corpus.ok());
  EXPECT_GT(corpus.value().num_aspects(), 0u);
  size_t annotated_reviews = 0;
  for (const Product& product : corpus.value().products()) {
    for (const Review& review : product.reviews) {
      if (!review.opinions.empty()) ++annotated_reviews;
    }
  }
  // Most reviews mention a mined aspect (battery / strap).
  EXPECT_GE(annotated_reviews, 8u);
}

TEST(LoaderTest, InstancesFollowAlsoBought) {
  auto corpus = LoadAmazonCorpus("mini", ReviewsJsonl(), MetadataJsonl(),
                                 SmallOptions());
  ASSERT_TRUE(corpus.ok());
  InstanceOptions instance_options;
  instance_options.min_comparative_items = 1;
  auto instances = corpus.value().BuildInstances(instance_options);
  ASSERT_GE(instances.size(), 1u);
  bool found_a1 = false;
  for (const auto& instance : instances) {
    if (instance.target().id == "A1") {
      found_a1 = true;
      EXPECT_EQ(instance.num_items(), 3u);
    }
  }
  EXPECT_TRUE(found_a1);
}

TEST(LoaderTest, ThinProductsDropped) {
  LoaderOptions options = SmallOptions();
  options.min_reviews_per_product = 5;
  auto corpus =
      LoadAmazonCorpus("mini", ReviewsJsonl(), MetadataJsonl(), options);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus.value().num_products(), 0u);
}

TEST(LoaderTest, MissingAsinIsParseError) {
  auto corpus = LoadAmazonCorpus(
      "mini", "{\"reviewerID\": \"U\", \"reviewText\": \"x\"}\n", "",
      SmallOptions());
  EXPECT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kParseError);
}

TEST(LoaderTest, MalformedJsonReported) {
  auto corpus =
      LoadAmazonCorpus("mini", "{not json}\n", "", SmallOptions());
  EXPECT_FALSE(corpus.ok());
}

TEST(LoaderTest, EmptyReviewsRejected) {
  auto corpus = LoadAmazonCorpus("mini", "", MetadataJsonl(), SmallOptions());
  EXPECT_FALSE(corpus.ok());
}

TEST(LoaderTest, MetadataOptionalPerProduct) {
  // A3 has no related/also_bought: loads fine with empty links.
  auto corpus = LoadAmazonCorpus("mini", ReviewsJsonl(), MetadataJsonl(),
                                 SmallOptions());
  ASSERT_TRUE(corpus.ok());
  const Product* a3 = corpus.value().Find("A3");
  ASSERT_NE(a3, nullptr);
  EXPECT_TRUE(a3->also_bought.empty());
  EXPECT_EQ(a3->title, "Product Three");
}

TEST(LoaderTest, MissingFilesReportIOError) {
  auto corpus = LoadAmazonCorpusFromFiles("mini", "/no/such/reviews.jsonl",
                                          "/no/such/meta.jsonl");
  EXPECT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace comparesets
