#include "util/string_util.h"

#include <gtest/gtest.h>

namespace comparesets {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c,", ','),
            (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(SplitTest, EmptyInputIsSingleEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\n\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitWhitespaceTest, EmptyAndAllWhitespace) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nhello"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo 123 World!"), "hello 123 world!");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("comparesets", "compare"));
  EXPECT_FALSE(StartsWith("compare", "comparesets"));
  EXPECT_TRUE(EndsWith("review.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "review.csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s-%.2f", 7, "abc", 1.5), "7-abc-1.50");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StringPrintfTest, LongOutput) {
  std::string long_str(500, 'x');
  EXPECT_EQ(StringPrintf("%s!", long_str.c_str()), long_str + "!");
}

TEST(FormatDoubleTest, Decimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-0.125, 3), "-0.125");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-9876543), "-9,876,543");
}

}  // namespace
}  // namespace comparesets
