#include "graph/hks.h"

#include <gtest/gtest.h>

#include "graph/targethks_greedy.h"
#include "util/rng.h"

namespace comparesets {
namespace {

SimilarityGraph RandomGraph(size_t n, Rng* rng) {
  SimilarityGraph graph(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      graph.set_weight(i, j, rng->UniformDouble(0.0, 10.0));
    }
  }
  return graph;
}

/// Brute-force unconstrained HkS for verification.
CoreList BruteForceHks(const SimilarityGraph& graph, size_t k) {
  size_t n = graph.num_vertices();
  CoreList best;
  best.weight = -1.0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) != k) continue;
    std::vector<size_t> subset;
    for (size_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) subset.push_back(v);
    }
    double weight = graph.SubsetWeight(subset);
    if (weight > best.weight) {
      best.weight = weight;
      best.vertices = std::move(subset);
    }
  }
  return best;
}

TEST(HksExactTest, MatchesBruteForce) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 5 + trial % 5;
    SimilarityGraph graph = RandomGraph(n, &rng);
    for (size_t k = 2; k <= std::min<size_t>(n, 5); ++k) {
      auto exact = SolveHksExact(graph, k);
      CoreList brute = BruteForceHks(graph, k);
      ASSERT_TRUE(exact.ok());
      EXPECT_NEAR(exact.value().weight, brute.weight, 1e-9)
          << "trial " << trial << " n=" << n << " k=" << k;
      EXPECT_TRUE(exact.value().proven_optimal);
    }
  }
}

TEST(HksExactTest, PaperReductionFindsHeavierSetThanAnySingleTarget) {
  // The Figure-4 situation: the HkS optimum {1,4,5} excludes vertex 0.
  SimilarityGraph graph(6);
  graph.set_weight(0, 3, 9.0);
  graph.set_weight(0, 5, 8.0);
  graph.set_weight(3, 5, 8.4);
  graph.set_weight(1, 4, 9.0);
  graph.set_weight(4, 5, 9.0);
  graph.set_weight(1, 5, 8.5);
  auto hks = SolveHksExact(graph, 3);
  ASSERT_TRUE(hks.ok());
  EXPECT_EQ(hks.value().vertices, (std::vector<size_t>{1, 4, 5}));
  EXPECT_NEAR(hks.value().weight, 26.5, 1e-9);
  // Constrained to target 0, the best is {0,3,5} = 25.4 < 26.5.
  auto constrained = SolveTargetHksExact(graph, 3);
  ASSERT_TRUE(constrained.ok());
  EXPECT_LT(constrained.value().weight, hks.value().weight);
}

TEST(HksGreedyTest, DominatesSingleStartGreedyAndNeverBeatsExact) {
  Rng rng(9);
  for (int trial = 0; trial < 15; ++trial) {
    SimilarityGraph graph = RandomGraph(10, &rng);
    auto exact = SolveHksExact(graph, 4);
    auto greedy = SolveHksGreedy(graph, 4);
    auto single = SolveTargetHksGreedy(graph, 4);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(single.ok());
    EXPECT_LE(greedy.value().weight, exact.value().weight + 1e-9);
    EXPECT_GE(greedy.value().weight, single.value().weight - 1e-9);
  }
}

TEST(HksPeelTest, RightSizeAndNeverBeatsExact) {
  Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    SimilarityGraph graph = RandomGraph(9, &rng);
    auto exact = SolveHksExact(graph, 4);
    auto peel = SolveHksPeel(graph, 4);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(peel.ok());
    EXPECT_EQ(peel.value().vertices.size(), 4u);
    EXPECT_LE(peel.value().weight, exact.value().weight + 1e-9);
  }
}

TEST(HksPeelTest, PeelsLightestVertexFirst) {
  // A 4-vertex graph where vertex 2 has the lightest degree.
  SimilarityGraph graph(4);
  graph.set_weight(0, 1, 5.0);
  graph.set_weight(0, 3, 5.0);
  graph.set_weight(1, 3, 5.0);
  graph.set_weight(2, 0, 0.1);
  auto peel = SolveHksPeel(graph, 3);
  ASSERT_TRUE(peel.ok());
  EXPECT_EQ(peel.value().vertices, (std::vector<size_t>{0, 1, 3}));
}

TEST(HksTest, InvalidArgumentsRejected) {
  SimilarityGraph graph(4);
  EXPECT_FALSE(SolveHksExact(graph, 0).ok());
  EXPECT_FALSE(SolveHksExact(graph, 5).ok());
  EXPECT_FALSE(SolveHksGreedy(SimilarityGraph(0), 1).ok());
  EXPECT_FALSE(SolveHksPeel(graph, 9).ok());
}

TEST(HksTest, TimeLimitStillReturnsFeasibleSolution) {
  // A near-zero budget must still yield a feasible k-subset (the greedy
  // incumbents); whether optimality gets proven depends on how fast the
  // sub-solves finish within the 1 ms floor, so only feasibility and a
  // sane weight are asserted.
  Rng rng(13);
  SimilarityGraph graph = RandomGraph(20, &rng);
  ExactSolverOptions options;
  options.time_limit_seconds = 1e-6;
  auto result = SolveHksExact(graph, 6, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().vertices.size(), 6u);
  EXPECT_GT(result.value().weight, 0.0);
}

}  // namespace
}  // namespace comparesets
