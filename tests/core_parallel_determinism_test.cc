// The intra-request parallelism contract (docs/execution-model.md):
// fanning a request's per-item solves, CompaReSetS+ round refits, and
// similarity-graph rows over a thread pool returns BIT-IDENTICAL
// results to the serial path — same selections, same objective doubles,
// same error on cancellation/deadline expiry. These tests pin that
// guarantee at the selector level; service_intra_parallel_test pins the
// engine-level nesting rule on top.

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "core/selector.h"
#include "eval/runner.h"
#include "graph/similarity_graph.h"
#include "util/cancellation.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace comparesets {
namespace {

Workload SmallWorkload() {
  RunnerConfig config;
  config.category = "Cellphone";
  config.num_products = 24;
  config.max_instances = 6;
  config.seed = 7;
  return Workload::BuildSynthetic(config).ValueOrDie();
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ParallelDeterminismTest() : workload_(SmallWorkload()), pool_(3) {}

  static SelectorOptions BaseOptions() {
    SelectorOptions options;
    options.m = 3;
    options.lambda = 1.0;
    options.mu = 0.1;
    return options;
  }

  Workload workload_;
  ThreadPool pool_;
};

TEST_F(ParallelDeterminismTest, LanesRespectPoolCapAndTaskCount) {
  ParallelContext empty;
  EXPECT_EQ(empty.Lanes(100), 1u);

  ParallelContext whole{&pool_, 0};
  EXPECT_EQ(whole.Lanes(100), 4u);  // 3 workers + the caller.
  EXPECT_EQ(whole.Lanes(2), 2u);    // Never more lanes than tasks.
  EXPECT_EQ(whole.Lanes(0), 0u);

  ParallelContext capped{&pool_, 2};
  EXPECT_EQ(capped.Lanes(100), 2u);
  ParallelContext serial{&pool_, 1};
  EXPECT_EQ(serial.Lanes(100), 1u);
}

TEST_F(ParallelDeterminismTest, RunParallelVisitsEveryIndexOnce) {
  ParallelContext context{&pool_, 0};
  std::vector<std::atomic<int>> visits(257);
  size_t lanes = RunParallel(context, visits.size(), [&](size_t i) {
    visits[i].fetch_add(1);
  });
  EXPECT_GT(lanes, 1u);
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelDeterminismTest, RunParallelTalliesFanoutCounters) {
  std::atomic<uint64_t> fanouts{0};
  std::atomic<uint64_t> tasks{0};
  ExecControl control;
  control.parallel_fanouts = &fanouts;
  control.parallel_tasks = &tasks;

  ParallelContext context{&pool_, 0};
  RunParallel(context, 8, [](size_t) {}, &control);
  EXPECT_EQ(fanouts.load(), 1u);
  EXPECT_EQ(tasks.load(), 8u);

  // A serial context must not count: nothing fanned out.
  ParallelContext serial{&pool_, 1};
  RunParallel(serial, 8, [](size_t) {}, &control);
  EXPECT_EQ(fanouts.load(), 1u);
  EXPECT_EQ(tasks.load(), 8u);
}

// The tentpole guarantee: for every selector on every instance,
// parallel selections == serial selections, bit for bit (vector
// equality on indices, exact == on the objective double).
TEST_F(ParallelDeterminismTest, SelectorsBitIdenticalAcrossLaneCounts) {
  for (const std::string& name :
       {std::string("Crs"), std::string("CompaReSetS"),
        std::string("CompaReSetS+")}) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok()) << name;

    SelectorOptions serial = BaseOptions();
    serial.parallel = ParallelContext{&pool_, 1};
    SelectorOptions parallel = BaseOptions();
    parallel.parallel = ParallelContext{&pool_, 0};
    SelectorOptions empty = BaseOptions();  // No pool at all.

    for (size_t k = 0; k < workload_.num_instances(); ++k) {
      const InstanceVectors& vectors = workload_.vectors()[k];
      auto a = selector.value()->Select(vectors, serial);
      auto b = selector.value()->Select(vectors, parallel);
      auto c = selector.value()->Select(vectors, empty);
      ASSERT_TRUE(a.ok() && b.ok() && c.ok()) << name << " instance " << k;
      EXPECT_EQ(a.value().selections, b.value().selections)
          << name << " instance " << k;
      EXPECT_EQ(a.value().objective, b.value().objective)
          << name << " instance " << k;
      EXPECT_EQ(a.value().selections, c.value().selections)
          << name << " instance " << k;
      EXPECT_EQ(a.value().objective, c.value().objective)
          << name << " instance " << k;
    }
  }
}

// Extra sync rounds multiply the parallel round refits; the Jacobi
// propose + ordered commit must stay deterministic across all of them.
TEST_F(ParallelDeterminismTest, ExtraSyncRoundsBitIdentical) {
  auto selector = MakeSelector("CompaReSetS+");
  ASSERT_TRUE(selector.ok());
  SelectorOptions serial = BaseOptions();
  serial.extra_sync_rounds = 3;
  serial.parallel = ParallelContext{&pool_, 1};
  SelectorOptions parallel = serial;
  parallel.parallel = ParallelContext{&pool_, 0};

  for (size_t k = 0; k < workload_.num_instances(); ++k) {
    const InstanceVectors& vectors = workload_.vectors()[k];
    auto a = selector.value()->Select(vectors, serial);
    auto b = selector.value()->Select(vectors, parallel);
    ASSERT_TRUE(a.ok() && b.ok()) << "instance " << k;
    EXPECT_EQ(a.value().selections, b.value().selections) << "instance " << k;
    EXPECT_EQ(a.value().objective, b.value().objective) << "instance " << k;
  }
}

TEST_F(ParallelDeterminismTest, SimilarityGraphParallelMatchesSerial) {
  auto selector = MakeSelector("CompaReSetS+");
  ASSERT_TRUE(selector.ok());
  for (size_t k = 0; k < workload_.num_instances(); ++k) {
    const InstanceVectors& vectors = workload_.vectors()[k];
    auto solved = selector.value()->Select(vectors, BaseOptions());
    ASSERT_TRUE(solved.ok());
    const std::vector<Selection>& selections = solved.value().selections;

    SimilarityGraph serial =
        BuildSimilarityGraph(vectors, selections, 1.0, 0.1);
    auto parallel = BuildSimilarityGraph(vectors, selections, 1.0, 0.1,
                                         ParallelContext{&pool_, 0}, nullptr);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel.value().num_vertices(), serial.num_vertices());
    for (size_t i = 0; i < serial.num_vertices(); ++i) {
      for (size_t j = 0; j < serial.num_vertices(); ++j) {
        EXPECT_EQ(parallel.value().weight(i, j), serial.weight(i, j))
            << "instance " << k << " edge (" << i << "," << j << ")";
      }
    }
  }
}

// The scheduling class is a runtime control, exactly like the lane cap:
// a solve fanned out at batch priority over a work-stealing pool must
// return the same bits as interactive at every lane count. Lane work is
// claimed by atomic index, merged in index order — which worker (or
// which steal) ran a lane never reaches the result.
TEST_F(ParallelDeterminismTest, BitIdenticalAcrossPrioritiesAndLanes) {
  const RequestPriority priorities[] = {RequestPriority::kInteractive,
                                        RequestPriority::kBatch};
  const size_t lane_caps[] = {1, 2, 4};
  for (const std::string& name :
       {std::string("Crs"), std::string("CompaReSetS"),
        std::string("CompaReSetS+")}) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok()) << name;

    SelectorOptions reference = BaseOptions();
    reference.parallel = ParallelContext{&pool_, 1};

    for (size_t k = 0; k < workload_.num_instances(); ++k) {
      const InstanceVectors& vectors = workload_.vectors()[k];
      auto want = selector.value()->Select(vectors, reference);
      ASSERT_TRUE(want.ok()) << name << " instance " << k;
      for (RequestPriority priority : priorities) {
        for (size_t lanes : lane_caps) {
          SelectorOptions options = BaseOptions();
          options.parallel = ParallelContext{&pool_, lanes, priority};
          auto got = selector.value()->Select(vectors, options);
          ASSERT_TRUE(got.ok())
              << name << " instance " << k << " lanes " << lanes << " "
              << RequestPriorityName(priority);
          EXPECT_EQ(got.value().selections, want.value().selections)
              << name << " instance " << k << " lanes " << lanes << " "
              << RequestPriorityName(priority);
          EXPECT_EQ(got.value().objective, want.value().objective)
              << name << " instance " << k << " lanes " << lanes << " "
              << RequestPriorityName(priority);
        }
      }
    }
  }
}

// Workers check the shared control at their iteration boundaries: a
// request cancelled before the sweep must come back kCancelled from the
// parallel path exactly as from the serial one.
TEST_F(ParallelDeterminismTest, CancellationSurfacesFromParallelSweep) {
  CancelToken cancel;
  cancel.Cancel();
  ExecControl control;
  control.cancel = &cancel;

  for (const std::string& name :
       {std::string("Crs"), std::string("CompaReSetS"),
        std::string("CompaReSetS+")}) {
    auto selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok()) << name;
    SelectorOptions options = BaseOptions();
    options.parallel = ParallelContext{&pool_, 0};
    auto result =
        selector.value()->Select(workload_.vectors()[0], options, &control);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << name;
  }
}

TEST_F(ParallelDeterminismTest, DeadlineSurfacesFromParallelGraphBuild) {
  auto selector = MakeSelector("CompaReSetS");
  ASSERT_TRUE(selector.ok());
  auto solved = selector.value()->Select(workload_.vectors()[0], BaseOptions());
  ASSERT_TRUE(solved.ok());

  Deadline expired(1e-9);
  ExecControl control;
  control.deadline = &expired;
  auto graph = BuildSimilarityGraph(
      workload_.vectors()[0], solved.value().selections, 1.0, 0.1,
      ParallelContext{&pool_, 0}, &control);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace comparesets
