#include "service/router.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"

namespace comparesets {
namespace {

std::shared_ptr<const IndexedCorpus> MakeCorpus(size_t products,
                                                uint64_t seed = 42) {
  auto config = DefaultConfig("Cellphone", products);
  config.status().CheckOK();
  config.value().seed = seed;
  auto corpus = GenerateCorpus(config.value());
  corpus.status().CheckOK();
  return IndexedCorpus::Build(std::move(corpus).value()).ValueOrDie();
}

std::unique_ptr<ShardRouter> MakeRouter(
    std::shared_ptr<const IndexedCorpus> corpus, size_t num_shards,
    RouterOptions options = {}) {
  options.engine.threads = 1;
  options.router_threads = 1;
  auto router = ShardRouter::Create(std::move(corpus), num_shards,
                                    std::move(options));
  router.status().CheckOK();
  return std::move(router).value();
}

/// One known target id per shard, from the full corpus's enumeration.
std::vector<std::string> TargetPerShard(const IndexedCorpus& full,
                                        const ShardRouter& router) {
  std::vector<std::string> targets(router.num_shards());
  for (const ProblemInstance& instance : full.instances()) {
    const std::string& id = instance.target().id;
    size_t shard = router.ShardForTarget(id);
    if (targets[shard].empty()) targets[shard] = id;
  }
  for (const std::string& target : targets) EXPECT_FALSE(target.empty());
  return targets;
}

SelectRequest RequestFor(const std::string& target_id) {
  SelectRequest request;
  request.target_id = target_id;
  request.selector = "CompaReSetS";
  return request;
}

TEST(ShardRouterTest, EveryTargetMapsToExactlyTheShardOwningItsRange) {
  auto full = MakeCorpus(80);
  auto router = MakeRouter(full, 3);
  const std::vector<std::string>& bounds = router->bounds();
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(router->ShardForTarget(""), 0u);  // Key-space origin.
  EXPECT_EQ(router->ShardForTarget("zzzz-no-such-id"), 2u);  // Past the end.
  EXPECT_EQ(router->ShardForTarget(bounds[1]), 1u);  // Bound is inclusive.
  for (const ProblemInstance& instance : full->instances()) {
    size_t shard = router->ShardForTarget(instance.target().id);
    EXPECT_TRUE(router->shard_engine(shard).corpus()->shard().range.Contains(
        instance.target().id));
  }
}

TEST(ShardRouterTest, UnknownTargetFailsLikeASingleEngine) {
  auto full = MakeCorpus(60);
  auto router = MakeRouter(full, 2);
  auto response = router->Select(RequestFor("no-such-product"));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST(ShardRouterTest, DownShardRefusesOnlyItsRange) {
  auto full = MakeCorpus(60);
  auto router = MakeRouter(full, 2);
  auto targets = TargetPerShard(*full, *router);

  router->SetShardState(0, ShardState::kDown).CheckOK();
  auto down = router->Select(RequestFor(targets[0]));
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.status().code(), StatusCode::kUnavailable);
  // The refusal names the affected range so operators know the blast
  // radius from the error alone.
  EXPECT_NE(down.status().message().find("shard 0"), std::string::npos)
      << down.status();
  EXPECT_NE(down.status().message().find("down"), std::string::npos);

  // The other range keeps serving.
  auto up = router->Select(RequestFor(targets[1]));
  ASSERT_TRUE(up.ok()) << up.status();

  // Batches fail only the down shard's slots, in request order.
  auto batch = router->SelectBatch(
      {RequestFor(targets[1]), RequestFor(targets[0])});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_EQ(batch[1].status().code(), StatusCode::kUnavailable);

  router->SetShardState(0, ShardState::kServing).CheckOK();
  EXPECT_TRUE(router->Select(RequestFor(targets[0])).ok());
}

TEST(ShardRouterTest, SetShardStateValidatesItsArguments) {
  auto router = MakeRouter(MakeCorpus(60), 2);
  EXPECT_EQ(router->SetShardState(5, ShardState::kDown).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(router->SetShardState(0, ShardState::kSwapping).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardRouterTest, RouteFaultFailsTheRequestBeforeAnyEngineSeesIt) {
  FaultPlan plan;
  plan.route.fail_first = 1;
  RouterOptions options;
  options.fault_injector = std::make_shared<FaultInjector>(plan);
  auto full = MakeCorpus(60);
  auto router = MakeRouter(full, 2, std::move(options));
  auto targets = TargetPerShard(*full, *router);

  auto faulted = router->Select(RequestFor(targets[0]));
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
  for (size_t s = 0; s < router->num_shards(); ++s) {
    EXPECT_TRUE(router->shard_engine(s).Traces().empty());
  }
  // One scripted failure dealt; the next roll routes normally.
  EXPECT_TRUE(router->Select(RequestFor(targets[0])).ok());
}

TEST(ShardRouterTest, GatherFaultFailsExactlyThatShardsSubBatch) {
  FaultPlan plan;
  plan.gather.fail_first = 1;
  RouterOptions options;
  options.fault_injector = std::make_shared<FaultInjector>(plan);
  auto full = MakeCorpus(60);
  auto router = MakeRouter(full, 2, std::move(options));
  auto targets = TargetPerShard(*full, *router);

  // 1-lane router: gather tasks run serially in shard order, so the
  // single scripted fault lands on shard 0's task.
  auto batch = router->SelectBatch({RequestFor(targets[0]),
                                    RequestFor(targets[1]),
                                    RequestFor(targets[0])});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].status().code(), StatusCode::kInternal);
  EXPECT_EQ(batch[2].status().code(), StatusCode::kInternal);
  ASSERT_TRUE(batch[1].ok()) << batch[1].status();
  // Shard 0's engine never saw its sub-batch.
  EXPECT_TRUE(router->shard_engine(0).Traces().empty());
  EXPECT_EQ(router->shard_engine(1).Traces().size(), 1u);
}

TEST(ShardRouterTest, DeadlineExpiringMidGatherCancelsRemainingShardWork) {
  FaultPlan plan;
  plan.gather.delay_rate = 1.0;      // Every gather task sleeps...
  plan.gather.delay_seconds = 0.05;  // ...past every request's budget.
  RouterOptions options;
  options.fault_injector = std::make_shared<FaultInjector>(plan);
  auto full = MakeCorpus(60);
  auto router = MakeRouter(full, 2, std::move(options));
  auto targets = TargetPerShard(*full, *router);

  std::vector<SelectRequest> requests = {RequestFor(targets[0]),
                                         RequestFor(targets[1])};
  for (SelectRequest& request : requests) request.deadline_seconds = 0.01;
  auto batch = router->SelectBatch(requests);
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& response : batch) {
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(response.status().message().find("before gather dispatch"),
              std::string::npos)
        << response.status();
  }
  // Expired requests were dropped at the router — no engine burned a
  // solve on work whose caller had already given up.
  for (size_t s = 0; s < router->num_shards(); ++s) {
    EXPECT_TRUE(router->shard_engine(s).Traces().empty());
  }
}

// The tentpole's cache-locality claim: swapping ONE shard bumps only
// that shard's epoch, and the other shards' memo/vector caches keep
// serving warm hits afterwards.
TEST(ShardRouterTest, PerShardSwapKeepsOtherShardsWarm) {
  auto full = MakeCorpus(60);
  auto router = MakeRouter(full, 2);
  auto targets = TargetPerShard(*full, *router);

  // Warm both shards (cold solve + memo fill).
  for (const std::string& target : targets) {
    auto cold = router->Select(RequestFor(target));
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_FALSE(cold.value().result_cache_hit);
  }

  Status swapped = router->SwapShardCorpus(0, full);
  ASSERT_TRUE(swapped.ok()) << swapped;
  auto statuses = router->ShardStatuses();
  EXPECT_EQ(statuses[0].corpus_epoch, 1u);
  EXPECT_EQ(statuses[1].corpus_epoch, 0u);
  EXPECT_EQ(statuses[0].state, ShardState::kServing);

  // Shard 0's caches are keyed on its new epoch: a repeat re-solves.
  auto resolved = router->Select(RequestFor(targets[0]));
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_FALSE(resolved.value().result_cache_hit);

  // Shard 1 never moved: its memo still answers whole.
  auto warm = router->Select(RequestFor(targets[1]));
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm.value().result_cache_hit);
  EXPECT_EQ(warm.value().solve_seconds, 0.0);
  VectorCacheStats stats = router->shard_engine(1).CacheStats();
  EXPECT_EQ(stats.misses, 1u);  // Only the cold solve; nothing re-prepared.
  EXPECT_GE(stats.entries, 1u);
}

TEST(ShardRouterTest, SwapStressOnlyTouchesTheSwappedShard) {
  auto full = MakeCorpus(60);
  auto router = MakeRouter(full, 3);
  auto targets = TargetPerShard(*full, *router);
  for (const std::string& target : targets) {
    ASSERT_TRUE(router->Select(RequestFor(target)).ok());
  }
  // Hammer shard 1 with swaps; shards 0 and 2 must stay warm throughout.
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(router->SwapShardCorpus(1, full).ok());
    auto warm0 = router->Select(RequestFor(targets[0]));
    auto warm2 = router->Select(RequestFor(targets[2]));
    ASSERT_TRUE(warm0.ok());
    ASSERT_TRUE(warm2.ok());
    EXPECT_TRUE(warm0.value().result_cache_hit);
    EXPECT_TRUE(warm2.value().result_cache_hit);
  }
  EXPECT_EQ(router->ShardStatuses()[1].corpus_epoch, 4u);
  EXPECT_EQ(router->ShardStatuses()[0].corpus_epoch, 0u);
}

TEST(ShardRouterTest, FailedSwapKeepsTheOldSnapshotAndState) {
  FaultPlan plan;
  plan.corpus_swap.fail_first = 1;
  RouterOptions options;
  options.engine.fault_injector = std::make_shared<FaultInjector>(plan);
  auto full = MakeCorpus(60);
  auto router = MakeRouter(full, 2, std::move(options));
  auto targets = TargetPerShard(*full, *router);
  ASSERT_TRUE(router->Select(RequestFor(targets[0])).ok());

  Status failed = router->SwapShardCorpus(0, full);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  auto statuses = router->ShardStatuses();
  // Epoch unchanged, state restored, and the old snapshot still serves
  // (warm, even: the memo survived the failed swap).
  EXPECT_EQ(statuses[0].corpus_epoch, 0u);
  EXPECT_EQ(statuses[0].state, ShardState::kServing);
  auto warm = router->Select(RequestFor(targets[0]));
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm.value().result_cache_hit);

  // The scripted fault is spent; the retry swap lands.
  ASSERT_TRUE(router->SwapShardCorpus(0, full).ok());
  EXPECT_EQ(router->ShardStatuses()[0].corpus_epoch, 1u);
}

TEST(ShardRouterTest, SwapValidatesItsArguments) {
  auto router = MakeRouter(MakeCorpus(60), 2);
  EXPECT_EQ(router->SwapShardCorpus(9, MakeCorpus(60)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(router->SwapShardCorpus(0, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardRouterTest, TracesCarryTheOwningShardId) {
  auto full = MakeCorpus(60);
  auto router = MakeRouter(full, 2);
  auto targets = TargetPerShard(*full, *router);
  ASSERT_TRUE(router->Select(RequestFor(targets[1])).ok());
  std::vector<RequestTrace> traces = router->Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].shard_id, 1u);
  EXPECT_EQ(traces[0].corpus_epoch, 0u);
  EXPECT_NE(router->DumpTraces().find("\"shard_id\":1"), std::string::npos);
}

TEST(ShardRouterTest, PrometheusExportLabelsEveryShard) {
  auto full = MakeCorpus(60);
  auto router = MakeRouter(full, 2);
  auto targets = TargetPerShard(*full, *router);
  ASSERT_TRUE(router->Select(RequestFor(targets[0])).ok());
  ASSERT_TRUE(router->Select(RequestFor(targets[1])).ok());
  std::string out = router->RenderPrometheus();
  EXPECT_NE(out.find("router_requests_total 2\n"), std::string::npos) << out;
  EXPECT_NE(out.find("engine_requests_total{shard=\"0\"} 1\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("engine_requests_total{shard=\"1\"} 1\n"),
            std::string::npos);
  // One family header for the per-shard samples, not one per shard.
  EXPECT_EQ(out.find("# TYPE engine_requests_total counter"),
            out.rfind("# TYPE engine_requests_total counter"));
}

}  // namespace
}  // namespace comparesets
