#include "eval/alignment.h"

#include <gtest/gtest.h>

#include <numeric>

#include "eval/information_loss.h"
#include "test_fixtures.h"

namespace comparesets {
namespace {

class AlignmentTest : public ::testing::Test {
 protected:
  AlignmentTest()
      : corpus_(testing::WorkingExampleCorpus()),
        instance_(testing::WorkingExampleInstance(corpus_)),
        vectors_(BuildInstanceVectors(OpinionModel::Binary(5), instance_)) {}

  Corpus corpus_;
  ProblemInstance instance_;
  InstanceVectors vectors_;
};

TEST_F(AlignmentTest, PairCountsCorrect) {
  std::vector<Selection> selections = {{0, 1}, {0}, {0, 1}};
  AlignmentScores scores = MeasureAlignment(instance_, selections);
  // Target pairs: |S1|·(|S2|+|S3|) = 2·(1+2) = 6.
  EXPECT_EQ(scores.target_pairs, 6u);
  // Among pairs: 2·1 + 2·2 + 1·2 = 8.
  EXPECT_EQ(scores.among_pairs, 8u);
}

TEST_F(AlignmentTest, ScoresWithinUnitInterval) {
  std::vector<Selection> selections = {{0, 1, 2}, {0, 1}, {2, 3}};
  AlignmentScores scores = MeasureAlignment(instance_, selections);
  for (const RougeTriple* t :
       {&scores.target_vs_comparative, &scores.among_items}) {
    EXPECT_GE(t->rouge1.f1, 0.0);
    EXPECT_LE(t->rouge1.f1, 1.0);
    EXPECT_GE(t->rougeL.f1, 0.0);
    EXPECT_LE(t->rougeL.f1, 1.0);
  }
}

TEST_F(AlignmentTest, SharedAspectSelectionsScoreHigher) {
  // Aspect-aligned: target talks battery/lens/quality; comparatives pick
  // their battery-ish review (index 2) vs price-only review (index 3).
  std::vector<Selection> aligned = {{0}, {2}, {2}};
  std::vector<Selection> misaligned = {{0}, {3}, {3}};
  AlignmentScores a = MeasureAlignment(instance_, aligned);
  AlignmentScores b = MeasureAlignment(instance_, misaligned);
  EXPECT_GT(a.target_vs_comparative.rouge1.f1,
            b.target_vs_comparative.rouge1.f1);
}

TEST_F(AlignmentTest, SubsetRestrictsPairs) {
  std::vector<Selection> selections = {{0, 1}, {0}, {0, 1}};
  AlignmentScores subset =
      MeasureAlignmentSubset(instance_, selections, {0, 1});
  EXPECT_EQ(subset.target_pairs, 2u);  // |S1|·|S2| only.
  EXPECT_EQ(subset.among_pairs, 2u);
}

TEST_F(AlignmentTest, SubsetWithoutTargetHasNoTargetPairs) {
  std::vector<Selection> selections = {{0, 1}, {0}, {0, 1}};
  AlignmentScores subset =
      MeasureAlignmentSubset(instance_, selections, {1, 2});
  EXPECT_EQ(subset.target_pairs, 0u);
  EXPECT_EQ(subset.among_pairs, 2u);
  EXPECT_DOUBLE_EQ(subset.target_vs_comparative.rougeL.f1, 0.0);
}

TEST_F(AlignmentTest, EmptySelectionsYieldNoPairs) {
  std::vector<Selection> selections = {{}, {}, {}};
  AlignmentScores scores = MeasureAlignment(instance_, selections);
  EXPECT_EQ(scores.target_pairs, 0u);
  EXPECT_EQ(scores.among_pairs, 0u);
  EXPECT_DOUBLE_EQ(scores.among_items.rouge1.f1, 0.0);
}

TEST_F(AlignmentTest, IdenticalTextEverywhereScoresOne) {
  // Build a dedicated corpus where all reviews share identical text.
  Corpus corpus("same");
  corpus.catalog().Intern("battery");
  for (const char* id : {"a", "b"}) {
    Product p;
    p.id = id;
    for (int r = 0; r < 2; ++r) {
      Review review = testing::MakeReview(
          std::string(id) + std::to_string(r), {{0, testing::kPos}},
          "identical words in every review");
      p.reviews.push_back(review);
    }
    if (std::string(id) == "a") p.also_bought = {"b"};
    corpus.AddProduct(std::move(p)).CheckOK();
  }
  corpus.Finalize();
  ProblemInstance instance;
  instance.items = {corpus.Find("a"), corpus.Find("b")};
  AlignmentScores scores = MeasureAlignment(instance, {{0, 1}, {0, 1}});
  EXPECT_DOUBLE_EQ(scores.among_items.rouge1.f1, 1.0);
  EXPECT_DOUBLE_EQ(scores.among_items.rougeL.f1, 1.0);
}

// --- Information loss (Figure 11) ------------------------------------------

TEST_F(AlignmentTest, InformationLossZeroForFullSelection) {
  std::vector<Selection> full;
  for (size_t i = 0; i < 3; ++i) {
    Selection all(vectors_.num_reviews(i));
    std::iota(all.begin(), all.end(), 0);
    full.push_back(all);
  }
  InformationLoss loss = MeasureInformationLoss(vectors_, full);
  EXPECT_NEAR(loss.delta_target, 0.0, 1e-12);
  EXPECT_NEAR(loss.delta_all_items, 0.0, 1e-12);
  EXPECT_NEAR(loss.cosine_target, 1.0, 1e-12);
  EXPECT_NEAR(loss.cosine_all_items, 1.0, 1e-12);
}

TEST_F(AlignmentTest, InformationLossPositiveForPartialSelection) {
  std::vector<Selection> partial = {{2}, {3}, {3}};
  InformationLoss loss = MeasureInformationLoss(vectors_, partial);
  EXPECT_GT(loss.delta_target, 0.0);
  EXPECT_LT(loss.cosine_target, 1.0);
  EXPECT_GE(loss.cosine_target, 0.0);
}

TEST_F(AlignmentTest, LargerSelectionsLoseLessOnWorkingExample) {
  // m = 3 contains a proportional triple (zero loss); m = 1 cannot.
  std::vector<Selection> m1 = {{0}, {0}, {0}};
  std::vector<Selection> m3 = {{0, 1, 2}, {0, 1, 2}, {0, 1, 2}};
  InformationLoss loss1 = MeasureInformationLoss(vectors_, m1);
  InformationLoss loss3 = MeasureInformationLoss(vectors_, m3);
  EXPECT_LE(loss3.delta_target, loss1.delta_target + 1e-12);
}

}  // namespace
}  // namespace comparesets
