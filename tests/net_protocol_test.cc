// Protocol-hardening tests for the net/ layer: the decode surface is
// fed a deterministic corpus of mutated frames — truncations at every
// prefix length, oversized length prefixes, garbage bytes mid-stream,
// version-mismatch headers — and must always answer with a clean typed
// Status: no crash, no hang, no unbounded read. A live ShardServer gets
// the same corpus over a real socket and must answer kError (or close)
// and keep serving fresh connections afterwards.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "net/client.h"
#include "net/messages.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire_format.h"
#include "service/backend.h"
#include "util/rng.h"

namespace comparesets {
namespace {

// --- Wire primitives -------------------------------------------------------

TEST(WireFormatTest, ScalarRoundTrip) {
  WireWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU16(0xbeef);
  writer.WriteU32(0xdeadbeefu);
  writer.WriteU64(0x0123456789abcdefull);
  writer.WriteI32(-42);
  writer.WriteBool(true);
  writer.WriteBool(false);
  writer.WriteDouble(-0.0);
  writer.WriteDouble(1.0 / 3.0);
  writer.WriteString(std::string("hello \0 world", 13));

  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadU8().ValueOrDie(), 0xab);
  EXPECT_EQ(reader.ReadU16().ValueOrDie(), 0xbeef);
  EXPECT_EQ(reader.ReadU32().ValueOrDie(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadU64().ValueOrDie(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.ReadI32().ValueOrDie(), -42);
  EXPECT_TRUE(reader.ReadBool().ValueOrDie());
  EXPECT_FALSE(reader.ReadBool().ValueOrDie());
  double negative_zero = reader.ReadDouble().ValueOrDie();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero));
  EXPECT_EQ(reader.ReadDouble().ValueOrDie(), 1.0 / 3.0);
  EXPECT_EQ(reader.ReadString().ValueOrDie(), std::string("hello \0 world", 13));
  EXPECT_TRUE(reader.ExpectFullyConsumed("scalars").ok());
}

TEST(WireFormatTest, ReadPastEndIsParseError) {
  WireReader reader(std::string_view("\x01\x02", 2));
  EXPECT_TRUE(reader.ReadU8().ok());
  EXPECT_EQ(reader.ReadU32().status().code(), StatusCode::kParseError);
}

TEST(WireFormatTest, StringLengthBeyondPayloadIsParseError) {
  WireWriter writer;
  writer.WriteU32(1000);  // Claims 1000 bytes; none follow.
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadString().status().code(), StatusCode::kParseError);
}

TEST(WireFormatTest, BadBoolByteIsParseError) {
  WireWriter writer;
  writer.WriteU8(7);
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadBool().status().code(), StatusCode::kParseError);
}

TEST(WireFormatTest, TrailingBytesFailExpectFullyConsumed) {
  WireWriter writer;
  writer.WriteU8(1);
  WireReader reader(writer.bytes());
  Status status = reader.ExpectFullyConsumed("thing");
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("thing"), std::string::npos);
}

TEST(FrameHeaderTest, RoundTrip) {
  std::string frame = EncodeFrame(7, "payload");
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  auto header = DecodeFrameHeader(frame);
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header.value().version, kWireVersion);
  EXPECT_EQ(header.value().type, 7);
  EXPECT_EQ(header.value().payload_bytes, 7u);
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), "payload");
}

TEST(FrameHeaderTest, TruncatedHeaderIsParseError) {
  std::string frame = EncodeFrame(1, "x");
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    auto header = DecodeFrameHeader(std::string_view(frame.data(), len));
    EXPECT_EQ(header.status().code(), StatusCode::kParseError)
        << "prefix length " << len;
  }
}

TEST(FrameHeaderTest, BadMagicIsParseError) {
  std::string frame = EncodeFrame(1, "x");
  frame[0] = 'X';
  auto header = DecodeFrameHeader(frame);
  EXPECT_EQ(header.status().code(), StatusCode::kParseError);
  EXPECT_NE(header.status().message().find("magic"), std::string::npos);
}

TEST(FrameHeaderTest, VersionMismatchIsInvalidArgument) {
  std::string frame = EncodeFrame(1, "x");
  frame[4] = static_cast<char>(kWireVersion + 1);
  auto header = DecodeFrameHeader(frame);
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(header.status().message().find("version"), std::string::npos);
}

TEST(FrameHeaderTest, VersionMismatchNamesBothVersions) {
  // Negotiation contract: the refusal names the peer's version AND ours,
  // so an old client's log says exactly which build to upgrade to. A v1
  // frame is what a pre-tier binary actually sends.
  std::string frame = EncodeFrame(1, "x");
  frame[4] = 1;
  frame[5] = 0;
  auto header = DecodeFrameHeader(frame);
  ASSERT_EQ(header.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(header.status().message().find("peer speaks v1"),
            std::string::npos)
      << header.status();
  EXPECT_NE(header.status().message().find(
                "this build speaks v" + std::to_string(kWireVersion)),
            std::string::npos)
      << header.status();
}

TEST(FrameHeaderTest, OversizedLengthPrefixIsParseError) {
  std::string frame = EncodeFrame(1, "x");
  uint32_t huge = kMaxFramePayloadBytes + 1;
  std::memcpy(&frame[8], &huge, sizeof(huge));
  auto header = DecodeFrameHeader(frame);
  EXPECT_EQ(header.status().code(), StatusCode::kParseError);
  EXPECT_NE(header.status().message().find("oversized"), std::string::npos);
}

// --- Message codecs --------------------------------------------------------

SelectRequest SampleRequest() {
  SelectRequest request;
  request.target_id = "cellphone-P00007";
  request.comparative_ids = {"cellphone-P00001", "cellphone-P00002"};
  request.selector = "CompaReSetS+";
  request.options.m = 4;
  request.options.lambda = 0.75;
  request.options.mu = 0.125;
  request.options.seed = 99;
  request.options.extra_sync_rounds = 2;
  request.options.min_tier = QualityTier::kAnytime;
  request.options.sample_threshold = 500;
  request.options.sample_size = 128;
  request.deadline_seconds = 1.5;
  return request;
}

TEST(MessageCodecTest, SelectRequestRoundTrip) {
  SelectRequest request = SampleRequest();
  auto decoded = DecodeSelectRequest(EncodeSelectRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const SelectRequest& got = decoded.value();
  EXPECT_EQ(got.target_id, request.target_id);
  EXPECT_EQ(got.comparative_ids, request.comparative_ids);
  EXPECT_EQ(got.selector, request.selector);
  EXPECT_EQ(got.options.m, request.options.m);
  EXPECT_EQ(got.options.lambda, request.options.lambda);
  EXPECT_EQ(got.options.mu, request.options.mu);
  EXPECT_EQ(got.options.seed, request.options.seed);
  EXPECT_EQ(got.options.extra_sync_rounds, request.options.extra_sync_rounds);
  EXPECT_EQ(got.options.min_tier, request.options.min_tier);
  EXPECT_EQ(got.options.sample_threshold, request.options.sample_threshold);
  EXPECT_EQ(got.options.sample_size, request.options.sample_size);
  EXPECT_EQ(got.deadline_seconds, request.deadline_seconds);
  EXPECT_EQ(got.priority, request.priority);
  // CancelTokens are process-local and never travel.
  EXPECT_EQ(got.cancel, nullptr);
}

TEST(MessageCodecTest, BatchPriorityRoundTrips) {
  SelectRequest request = SampleRequest();
  request.priority = RequestPriority::kBatch;
  auto decoded = DecodeSelectRequest(EncodeSelectRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value().priority, RequestPriority::kBatch);
}

TEST(MessageCodecTest, UnknownPriorityByteInRequestIsParseError) {
  // v4 appends the priority class as the payload's final byte.
  std::string payload = EncodeSelectRequest(SampleRequest());
  payload[payload.size() - 1] = 7;
  auto decoded = DecodeSelectRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  EXPECT_NE(decoded.status().message().find("priority"), std::string::npos)
      << decoded.status();
}

TEST(MessageCodecTest, UnknownTierByteInRequestIsParseError) {
  // The min_tier byte sits a fixed distance from the payload's end:
  // u8 tier, u64 sample_threshold, u64 sample_size, double deadline,
  // u8 priority.
  std::string payload = EncodeSelectRequest(SampleRequest());
  size_t tier_at = payload.size() - 1 - 8 - 8 - 8 - 1;
  payload[tier_at] = 7;
  auto decoded = DecodeSelectRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  EXPECT_NE(decoded.status().message().find("quality tier"),
            std::string::npos)
      << decoded.status();
}

TEST(MessageCodecTest, UnknownTierByteInResponseIsParseError) {
  // Locate the response's tier byte by differencing two encodings that
  // differ only in the tier — immune to layout drift elsewhere.
  SelectResponse response;
  response.target_id = "cellphone-P00001";
  response.tier = QualityTier::kExact;
  std::string exact =
      EncodeSelectResult(Result<SelectResponse>(response));
  response.tier = QualityTier::kSampled;
  std::string sampled =
      EncodeSelectResult(Result<SelectResponse>(response));
  ASSERT_EQ(exact.size(), sampled.size());
  size_t tier_at = exact.size();
  for (size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] != sampled[i]) {
      tier_at = i;
      break;
    }
  }
  ASSERT_LT(tier_at, exact.size());
  exact[tier_at] = 7;
  auto decoded = DecodeSelectResult(exact);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  EXPECT_NE(decoded.status().message().find("quality tier"),
            std::string::npos)
      << decoded.status();
}

TEST(MessageCodecTest, StatusFullFidelityThroughSelectResult) {
  Result<SelectResponse> error(
      Status::DeadlineExceeded("deadline exceeded in solve stage"));
  auto decoded = DecodeSelectResult(EncodeSelectResult(error));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_FALSE(decoded.value().ok());
  EXPECT_TRUE(decoded.value().status() == error.status())
      << decoded.value().status();
}

TEST(MessageCodecTest, SelectResponseRoundTripIsBitExact) {
  SelectResponse response;
  response.target_id = "cellphone-P00001";
  response.item_ids = {"cellphone-P00001", "cellphone-P00002"};
  response.selections = {{0, 2, 5}, {1}};
  response.objective = 66.0300000000000011;  // exercises bit-level fidelity
  response.alignment.target_vs_comparative.rougeL.f1 = 0.18159999999999998;
  response.alignment.among_items.rouge1.precision = 1.0 / 3.0;
  response.alignment.target_pairs = 25;
  response.alignment.among_pairs = 300;
  response.cache_hit = true;
  response.result_cache_hit = false;
  response.prepare_seconds = 0.25;
  response.solve_seconds = 1e-5;
  response.tier = QualityTier::kSampled;
  response.objective_gap = 0.03125;
  response.trace.request_id = 17;
  response.trace.shard_id = 3;
  response.trace.target_id = response.target_id;
  response.trace.tier = "sampled";
  response.trace.objective_gap = 0.03125;
  response.trace.spans.push_back({"crs.items", 0.001});

  auto decoded =
      DecodeSelectResult(EncodeSelectResult(Result<SelectResponse>(response)));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded.value().ok());
  const SelectResponse& got = decoded.value().value();
  EXPECT_EQ(got.target_id, response.target_id);
  EXPECT_EQ(got.item_ids, response.item_ids);
  EXPECT_EQ(got.selections, response.selections);
  EXPECT_EQ(got.objective, response.objective);
  EXPECT_EQ(got.alignment.target_vs_comparative.rougeL.f1,
            response.alignment.target_vs_comparative.rougeL.f1);
  EXPECT_EQ(got.alignment.among_items.rouge1.precision,
            response.alignment.among_items.rouge1.precision);
  EXPECT_EQ(got.alignment.target_pairs, response.alignment.target_pairs);
  EXPECT_EQ(got.cache_hit, response.cache_hit);
  EXPECT_EQ(got.result_cache_hit, response.result_cache_hit);
  EXPECT_EQ(got.prepare_seconds, response.prepare_seconds);
  EXPECT_EQ(got.solve_seconds, response.solve_seconds);
  EXPECT_EQ(got.tier, response.tier);
  EXPECT_EQ(got.objective_gap, response.objective_gap);
  EXPECT_EQ(got.trace.request_id, response.trace.request_id);
  EXPECT_EQ(got.trace.shard_id, response.trace.shard_id);
  EXPECT_EQ(got.trace.tier, response.trace.tier);
  EXPECT_EQ(got.trace.objective_gap, response.trace.objective_gap);
  ASSERT_EQ(got.trace.spans.size(), 1u);
  EXPECT_EQ(got.trace.spans[0].name, "crs.items");
  EXPECT_EQ(got.trace.spans[0].seconds, 0.001);
}

TEST(MessageCodecTest, BatchRoundTripPreservesOrder) {
  std::vector<SelectRequest> requests(3, SampleRequest());
  requests[1].target_id = "cellphone-P00002";
  requests[2].selector = "CompaReSetSGreedy";
  auto decoded = DecodeBatchRequest(EncodeBatchRequest(requests));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded.value().size(), 3u);
  EXPECT_EQ(decoded.value()[1].target_id, "cellphone-P00002");
  EXPECT_EQ(decoded.value()[2].selector, "CompaReSetSGreedy");

  std::vector<Result<SelectResponse>> results;
  SelectResponse ok_response;
  ok_response.target_id = "cellphone-P00002";
  results.emplace_back(ok_response);
  results.emplace_back(Status::NotFound("no such target"));
  auto batch = DecodeBatchResponse(EncodeBatchResponse(results));
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch.value().size(), 2u);
  EXPECT_TRUE(batch.value()[0].ok());
  EXPECT_EQ(batch.value()[0].value().target_id, "cellphone-P00002");
  EXPECT_EQ(batch.value()[1].status().code(), StatusCode::kNotFound);
}

TEST(MessageCodecTest, ShardHealthRoundTrip) {
  ShardHealth health;
  health.ready = true;
  health.shard_id = 2;
  health.state = "serving";
  health.range.begin = "cellphone-P00030";
  health.range.end = "cellphone-P00045";
  health.corpus_epoch = 4;
  health.num_instances = 15;
  health.num_products = 60;
  auto decoded = DecodeShardHealth(EncodeShardHealth(health));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded.value().ready);
  EXPECT_EQ(decoded.value().shard_id, 2u);
  EXPECT_EQ(decoded.value().state, "serving");
  EXPECT_EQ(decoded.value().range.begin, "cellphone-P00030");
  EXPECT_EQ(decoded.value().range.end, "cellphone-P00045");
  EXPECT_EQ(decoded.value().corpus_epoch, 4u);
  EXPECT_EQ(decoded.value().num_instances, 15u);
  EXPECT_EQ(decoded.value().num_products, 60u);
}

// --- Mutated-frame corpus over the decoders --------------------------------

// Deterministic corpus: a valid kSelectRequest frame plus systematic
// truncations, byte flips, length-prefix corruption, and pure garbage.
std::vector<std::string> MutatedFrameCorpus() {
  std::string valid = EncodeFrame(
      static_cast<uint16_t>(MessageType::kSelectRequest),
      EncodeSelectRequest(SampleRequest()));
  std::vector<std::string> corpus;

  // Every strict prefix (truncated header AND truncated payload).
  for (size_t len = 0; len < valid.size(); len += 3) {
    corpus.push_back(valid.substr(0, len));
  }
  // Single-byte flips sweeping the whole frame, seeded and reproducible.
  Rng rng(20260809, 1);
  for (int i = 0; i < 64; ++i) {
    std::string mutated = valid;
    size_t pos = static_cast<size_t>(rng.NextU32() % mutated.size());
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1 + rng.NextU32() % 255));
    corpus.push_back(std::move(mutated));
  }
  // Oversized length prefix.
  {
    std::string mutated = valid;
    uint32_t huge = 0xffffffffu;
    std::memcpy(&mutated[8], &huge, sizeof(huge));
    corpus.push_back(std::move(mutated));
  }
  // Version from the future.
  {
    std::string mutated = valid;
    mutated[4] = 9;
    corpus.push_back(std::move(mutated));
  }
  // Garbage bytes with no structure at all.
  {
    std::string garbage;
    for (int i = 0; i < 256; ++i) {
      garbage.push_back(static_cast<char>(rng.NextU32() & 0xff));
    }
    corpus.push_back(std::move(garbage));
  }
  return corpus;
}

TEST(MutatedFrameTest, DecodersNeverCrashAndFailTyped) {
  for (const std::string& frame : MutatedFrameCorpus()) {
    auto header = DecodeFrameHeader(frame);
    if (!header.ok()) {
      EXPECT_TRUE(header.status().code() == StatusCode::kParseError ||
                  header.status().code() == StatusCode::kInvalidArgument)
          << header.status();
      continue;
    }
    // Header happened to survive mutation; the payload decoder must
    // still fail cleanly or produce a well-formed request.
    std::string_view payload(frame);
    payload.remove_prefix(std::min(frame.size(), kFrameHeaderBytes));
    auto request = DecodeSelectRequest(payload);
    if (!request.ok()) {
      EXPECT_EQ(request.status().code(), StatusCode::kParseError)
          << request.status();
    }
  }
}

TEST(MutatedFrameTest, ResponsePayloadDecoderNeverCrashesAndFailsTyped) {
  // Same discipline over the response decoder, with the v2 tier + gap
  // fields in the encoded bytes: truncations at every prefix and seeded
  // byte flips must decode to a typed error or a well-formed response.
  SelectResponse response;
  response.target_id = "cellphone-P00001";
  response.item_ids = {"cellphone-P00001", "cellphone-P00002"};
  response.selections = {{0, 2, 5}, {1}};
  response.objective = 42.5;
  response.tier = QualityTier::kSampled;
  response.objective_gap = 0.25;
  response.trace.tier = "sampled";
  response.trace.objective_gap = 0.25;
  std::string valid = EncodeSelectResult(Result<SelectResponse>(response));

  for (size_t len = 0; len < valid.size(); len += 3) {
    auto decoded = DecodeSelectResult(valid.substr(0, len));
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kParseError)
          << "prefix " << len << ": " << decoded.status();
    }
  }
  Rng rng(20260809, 2);
  for (int i = 0; i < 64; ++i) {
    std::string mutated = valid;
    size_t pos = static_cast<size_t>(rng.NextU32() % mutated.size());
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1 + rng.NextU32() % 255));
    auto decoded = DecodeSelectResult(mutated);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kParseError)
          << "flip at " << pos << ": " << decoded.status();
    }
  }
}

// --- Mutated frames against a live server ----------------------------------

class LiveServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    auto defaults = DefaultConfig("Cellphone", 12);
    ASSERT_TRUE(defaults.ok());
    config = defaults.value();
    config.seed = 42;
    auto corpus = GenerateCorpus(config);
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    auto indexed = IndexedCorpus::Build(std::move(corpus).value());
    ASSERT_TRUE(indexed.ok()) << indexed.status();
    EngineOptions engine_options;
    engine_options.threads = 1;
    auto backends = CreateLocalBackends(indexed.value(), 1, engine_options);
    ASSERT_TRUE(backends.ok()) << backends.status();
    ShardServerOptions server_options;
    server_options.address =
        "unix:" + ::testing::TempDir() + "/net_protocol_live.sock";
    auto server = ShardServer::Start(
        std::move(backends.value().backends[0]), server_options);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(server).value();
  }

  void TearDown() override {
    if (server_) server_->Shutdown();
  }

  std::unique_ptr<ShardServer> server_;
};

TEST_F(LiveServerTest, MutatedFramesGetTypedErrorsAndServerSurvives) {
  for (const std::string& frame : MutatedFrameCorpus()) {
    // A byte flip can leave the frame VALID — a well-formed request
    // (possibly with hostile options the server would dutifully burn
    // CPU on) or a different legitimate message type. Serving those is
    // correct behaviour, not a protocol error: this test only sends
    // frames that are actually broken.
    auto header = DecodeFrameHeader(frame);
    if (header.ok()) {
      if (header.value().type !=
          static_cast<uint16_t>(MessageType::kSelectRequest)) {
        continue;
      }
      if (frame.size() >= kFrameHeaderBytes + header.value().payload_bytes) {
        std::string_view payload(frame);
        payload.remove_prefix(kFrameHeaderBytes);
        payload = payload.substr(0, header.value().payload_bytes);
        if (DecodeSelectRequest(payload).ok()) continue;
      }
    }
    auto socket = Socket::Connect(server_->bound_address(), 5.0);
    ASSERT_TRUE(socket.ok()) << socket.status();
    Socket connection = std::move(socket).value();
    Status sent = connection.SendAll(frame.data(), frame.size(), 5.0);
    if (!sent.ok()) continue;  // Server already slammed the door: fine.
    // Half-close: signal end-of-input so a truncated frame cannot park
    // the server waiting for bytes that will never come, while keeping
    // our read side open for the server's verdict.
    connection.ShutdownWrite();
    // Whatever comes back — a kError frame or a straight close — must
    // arrive promptly. A hang here fails the test timeout.
    (void)connection.RecvFrame(5.0);
    connection.Close();
  }
  // The server must still answer a well-formed probe afterwards.
  auto health = ProbeServer(server_->bound_address(), 5.0);
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health.value().ready);
  EXPECT_GT(server_->protocol_errors(), 0u);
}

TEST_F(LiveServerTest, UnsupportedMessageTypeAnswersKError) {
  auto socket = Socket::Connect(server_->bound_address(), 5.0);
  ASSERT_TRUE(socket.ok()) << socket.status();
  Socket connection = std::move(socket).value();
  ASSERT_TRUE(connection.SendFrame(999, "", 5.0).ok());
  auto frame = connection.RecvFrame(5.0);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame.value().type, static_cast<uint16_t>(MessageType::kError));
  Status server_error;
  ASSERT_TRUE(DecodeErrorPayload(frame.value().payload, &server_error).ok());
  EXPECT_EQ(server_error.code(), StatusCode::kInvalidArgument);
  connection.Close();
}

TEST_F(LiveServerTest, VersionMismatchAnswersKErrorWithInvalidArgument) {
  auto socket = Socket::Connect(server_->bound_address(), 5.0);
  ASSERT_TRUE(socket.ok()) << socket.status();
  Socket connection = std::move(socket).value();
  std::string frame = EncodeFrame(
      static_cast<uint16_t>(MessageType::kHealthRequest), "");
  frame[4] = 9;  // A version this build does not speak.
  ASSERT_TRUE(connection.SendAll(frame.data(), frame.size(), 5.0).ok());
  auto reply = connection.RecvFrame(5.0);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply.value().type, static_cast<uint16_t>(MessageType::kError));
  Status server_error;
  ASSERT_TRUE(DecodeErrorPayload(reply.value().payload, &server_error).ok());
  EXPECT_EQ(server_error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(server_error.message().find("version"), std::string::npos);
  // The refusal must name the version THIS server speaks, so the old
  // peer's operator knows what to upgrade to.
  EXPECT_NE(server_error.message().find(
                "this build speaks v" + std::to_string(kWireVersion)),
            std::string::npos)
      << server_error;
  connection.Close();
}

TEST_F(LiveServerTest, OldWireVersionFrameGetsTypedRefusal) {
  // A v1 peer (pre-tier build) sends a structurally valid health probe
  // under its own version; this v2 server must refuse with a typed
  // error naming both versions instead of misparsing the payload.
  auto socket = Socket::Connect(server_->bound_address(), 5.0);
  ASSERT_TRUE(socket.ok()) << socket.status();
  Socket connection = std::move(socket).value();
  std::string frame = EncodeFrame(
      static_cast<uint16_t>(MessageType::kHealthRequest), "");
  frame[4] = 1;  // Wire version 1.
  frame[5] = 0;
  ASSERT_TRUE(connection.SendAll(frame.data(), frame.size(), 5.0).ok());
  auto reply = connection.RecvFrame(5.0);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply.value().type, static_cast<uint16_t>(MessageType::kError));
  Status server_error;
  ASSERT_TRUE(DecodeErrorPayload(reply.value().payload, &server_error).ok());
  EXPECT_EQ(server_error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(server_error.message().find("peer speaks v1"), std::string::npos)
      << server_error;
  EXPECT_NE(server_error.message().find(
                "this build speaks v" + std::to_string(kWireVersion)),
            std::string::npos)
      << server_error;
  connection.Close();
}

}  // namespace
}  // namespace comparesets
