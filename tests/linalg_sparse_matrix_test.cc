#include "linalg/sparse_matrix.h"

#include <gtest/gtest.h>

#include "linalg/gram.h"
#include "util/rng.h"

namespace comparesets {
namespace {

Matrix RandomSparseDense(size_t rows, size_t cols, double density, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) m(r, c) = rng->UniformDouble(-2.0, 2.0);
    }
  }
  return m;
}

TEST(SparseMatrixTest, AppendColumnAndElementAccess) {
  SparseMatrix m(4);
  m.AppendColumn({{0, 1.0}, {2, -3.0}});
  m.AppendColumn({});
  m.AppendColumn({{3, 0.5}});

  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(2, 0), -3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(3, 2), 0.5);
  EXPECT_EQ(m.ColumnNnz(0), 2u);
  EXPECT_EQ(m.ColumnNnz(1), 0u);
}

TEST(SparseMatrixTest, DenseRoundTrip) {
  Rng rng(11);
  Matrix dense = RandomSparseDense(9, 7, 0.3, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  EXPECT_TRUE(sparse.ToDense() == dense);
}

TEST(SparseMatrixTest, ColumnMatchesDense) {
  Rng rng(12);
  Matrix dense = RandomSparseDense(6, 5, 0.4, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  for (size_t c = 0; c < dense.cols(); ++c) {
    EXPECT_TRUE(sparse.Column(c) == dense.Column(c)) << "column " << c;
  }
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  Rng rng(13);
  Matrix dense = RandomSparseDense(8, 6, 0.35, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  Vector x(6);
  for (size_t i = 0; i < x.size(); ++i) x[i] = rng.Normal();
  Vector expected = dense.Multiply(x);
  Vector got = sparse.Multiply(x);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-12);
  }
}

TEST(SparseMatrixTest, MultiplyTransposeMatchesDenseAndReusesWorkspace) {
  Rng rng(14);
  Matrix dense = RandomSparseDense(10, 4, 0.5, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  Vector x(10);
  for (size_t i = 0; i < x.size(); ++i) x[i] = rng.Normal();
  Vector expected = dense.MultiplyTranspose(x);

  Vector workspace(99, 7.0);  // Wrong size and stale content on purpose.
  sparse.MultiplyTranspose(x, &workspace);
  ASSERT_EQ(workspace.size(), dense.cols());
  for (size_t i = 0; i < workspace.size(); ++i) {
    EXPECT_NEAR(workspace[i], expected[i], 1e-12);
  }
}

TEST(SparseMatrixTest, ColumnNormsMatchDense) {
  Rng rng(15);
  Matrix dense = RandomSparseDense(12, 8, 0.25, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  std::vector<double> norms = sparse.ColumnNorms();
  ASSERT_EQ(norms.size(), dense.cols());
  for (size_t c = 0; c < dense.cols(); ++c) {
    EXPECT_NEAR(norms[c], dense.Column(c).NormL2(), 1e-12) << "column " << c;
  }
}

TEST(SparseMatrixTest, GramSystemMatchesDenseNormalEquations) {
  Rng rng(16);
  Matrix dense = RandomSparseDense(14, 6, 0.3, &rng);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  Vector target(14);
  for (size_t i = 0; i < target.size(); ++i) target[i] = rng.Normal();

  GramSystem gram = BuildGramSystem(sparse, target);
  ASSERT_EQ(gram.cols(), 6u);
  EXPECT_NEAR(gram.target_norm2, target.Dot(target), 1e-12);
  Vector vty = dense.MultiplyTranspose(target);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(gram.vty[i], vty[i], 1e-12);
    EXPECT_NEAR(gram.col_norms[i], dense.Column(i).NormL2(), 1e-12);
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(gram.gram(i, j), dense.Column(i).Dot(dense.Column(j)),
                  1e-12)
          << "G(" << i << "," << j << ")";
      EXPECT_DOUBLE_EQ(gram.gram(i, j), gram.gram(j, i));
    }
  }
}

TEST(SparseMatrixTest, EmptyMatrixHasNoColumns) {
  SparseMatrix m(5);
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
  Matrix dense = m.ToDense();
  EXPECT_EQ(dense.rows(), 5u);
  EXPECT_EQ(dense.cols(), 0u);
}

}  // namespace
}  // namespace comparesets
