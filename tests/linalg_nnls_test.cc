#include "linalg/nnls.h"

#include <gtest/gtest.h>

#include "linalg/qr.h"
#include "util/rng.h"

namespace comparesets {
namespace {

Matrix FromRows(const std::vector<std::vector<double>>& rows) {
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

TEST(NnlsTest, UnconstrainedOptimumAlreadyNonNegative) {
  Matrix a = FromRows({{1.0, 0.0}, {0.0, 1.0}});
  Vector b = {2.0, 3.0};
  auto result = SolveNnls(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().x[0], 2.0, 1e-9);
  EXPECT_NEAR(result.value().x[1], 3.0, 1e-9);
  EXPECT_NEAR(result.value().residual_norm, 0.0, 1e-9);
}

TEST(NnlsTest, ClampsNegativeCoordinateToZero) {
  // Unconstrained LS would need a negative coefficient on column 2.
  Matrix a = FromRows({{1.0, 1.0}, {0.0, 1.0}});
  Vector b = {1.0, -1.0};
  auto result = SolveNnls(a, b);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < result.value().x.size(); ++j) {
    EXPECT_GE(result.value().x[j], 0.0);
  }
  // Optimal NNLS here: x = (1, 0) with residual (0, -1).
  EXPECT_NEAR(result.value().x[0], 1.0, 1e-8);
  EXPECT_NEAR(result.value().x[1], 0.0, 1e-8);
}

TEST(NnlsTest, ZeroRhsGivesZeroSolution) {
  Matrix a = FromRows({{1.0, 2.0}, {3.0, 4.0}});
  auto result = SolveNnls(a, Vector{0.0, 0.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().x.NormL1(), 0.0, 1e-12);
}

TEST(NnlsTest, SolutionSatisfiesKkt) {
  // KKT for NNLS: w = A^T(b − Ax) has w_j <= tol for all j, and
  // w_j ≈ 0 where x_j > 0.
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    size_t rows = 6 + trial % 5;
    size_t cols = 3 + trial % 3;
    Matrix a(rows, cols);
    Vector b(rows);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) a(r, c) = rng.Normal();
      b[r] = rng.Normal();
    }
    auto result = SolveNnls(a, b);
    ASSERT_TRUE(result.ok());
    const Vector& x = result.value().x;
    Vector w = a.MultiplyTranspose(b - a.Multiply(x));
    for (size_t j = 0; j < cols; ++j) {
      EXPECT_GE(x[j], 0.0) << "trial " << trial;
      EXPECT_LE(w[j], 1e-6) << "trial " << trial << " col " << j;
      if (x[j] > 1e-9) {
        EXPECT_NEAR(w[j], 0.0, 1e-6) << "trial " << trial << " col " << j;
      }
    }
  }
}

TEST(NnlsTest, NoWorseThanZeroVector) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix a(5, 4);
    Vector b(5);
    for (size_t r = 0; r < 5; ++r) {
      for (size_t c = 0; c < 4; ++c) a(r, c) = rng.Normal();
      b[r] = rng.Normal();
    }
    auto result = SolveNnls(a, b);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value().residual_norm, b.NormL2() + 1e-9);
  }
}

TEST(NnlsTest, RecoversPlantedNonNegativeSolution) {
  Rng rng(123);
  for (int trial = 0; trial < 15; ++trial) {
    Matrix a(10, 4);
    for (size_t r = 0; r < 10; ++r) {
      for (size_t c = 0; c < 4; ++c) a(r, c) = rng.UniformDouble();
    }
    Vector planted = {0.5, 0.0, 1.5, 0.0};
    Vector b = a.Multiply(planted);
    auto result = SolveNnls(a, b);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result.value().residual_norm, 0.0, 1e-6) << "trial " << trial;
  }
}

TEST(NnlsTest, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(SolveNnls(Matrix(0, 0), Vector()).ok());
  EXPECT_FALSE(SolveNnls(Matrix(2, 2), Vector{1.0}).ok());
}

TEST(NnlsTest, AllNegativeCorrelationGivesZero) {
  // b is in the opposite direction of every column: optimum is x = 0.
  Matrix a = FromRows({{1.0, 2.0}, {1.0, 1.0}});
  Vector b = {-1.0, -1.0};
  auto result = SolveNnls(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().x.NormL1(), 0.0, 1e-12);
  EXPECT_EQ(result.value().iterations, 0);
}

}  // namespace
}  // namespace comparesets
