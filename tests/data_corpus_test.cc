#include "data/corpus.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace comparesets {
namespace {

using testing::MakeReview;
using testing::kPos;
using testing::kNeg;

Product TinyProduct(const std::string& id, size_t reviews,
                    std::vector<std::string> also_bought = {}) {
  Product p;
  p.id = id;
  p.title = "product " + id;
  p.also_bought = std::move(also_bought);
  for (size_t r = 0; r < reviews; ++r) {
    Review review = MakeReview(id + "-r" + std::to_string(r),
                               {{0, r % 2 == 0 ? kPos : kNeg}});
    review.reviewer_id = "user-" + std::to_string(r % 3);
    p.reviews.push_back(std::move(review));
  }
  return p;
}

TEST(CatalogTest, InternAssignsSequentialIds) {
  AspectCatalog catalog;
  EXPECT_EQ(catalog.Intern("battery"), 0);
  EXPECT_EQ(catalog.Intern("lens"), 1);
  EXPECT_EQ(catalog.Intern("battery"), 0);  // Idempotent.
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.Name(1), "lens");
  EXPECT_EQ(catalog.Find("lens"), 1);
  EXPECT_EQ(catalog.Find("missing"), -1);
}

TEST(ReviewTest, MentionedAspectsDeduplicatedSorted) {
  Review review = MakeReview("r", {{2, kPos}, {0, kNeg}, {2, kNeg}, {1, kPos}});
  EXPECT_EQ(review.MentionedAspects(), (std::vector<AspectId>{0, 1, 2}));
}

TEST(PolarityTest, Names) {
  EXPECT_STREQ(PolarityName(Polarity::kPositive), "positive");
  EXPECT_STREQ(PolarityName(Polarity::kNegative), "negative");
  EXPECT_STREQ(PolarityName(Polarity::kNeutral), "neutral");
}

TEST(CorpusTest, AddFindAndCounts) {
  Corpus corpus("test");
  corpus.AddProduct(TinyProduct("a", 3)).CheckOK();
  corpus.AddProduct(TinyProduct("b", 5)).CheckOK();
  corpus.Finalize();
  EXPECT_EQ(corpus.num_products(), 2u);
  EXPECT_EQ(corpus.num_reviews(), 8u);
  EXPECT_EQ(corpus.num_reviewers(), 3u);  // user-0/1/2 shared.
  ASSERT_NE(corpus.Find("a"), nullptr);
  EXPECT_EQ(corpus.Find("a")->reviews.size(), 3u);
  EXPECT_EQ(corpus.Find("zzz"), nullptr);
}

TEST(CorpusTest, DuplicateProductRejected) {
  Corpus corpus("test");
  corpus.AddProduct(TinyProduct("a", 2)).CheckOK();
  Status status = corpus.AddProduct(TinyProduct("a", 2));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(CorpusTest, BuildInstancesFollowsAlsoBought) {
  Corpus corpus("test");
  corpus.AddProduct(TinyProduct("t", 4, {"c1", "c2", "ghost"})).CheckOK();
  corpus.AddProduct(TinyProduct("c1", 4)).CheckOK();
  corpus.AddProduct(TinyProduct("c2", 4)).CheckOK();
  corpus.Finalize();

  auto instances = corpus.BuildInstances();
  // Only "t" has enough comparatives; c1/c2 have none.
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].target().id, "t");
  EXPECT_EQ(instances[0].num_items(), 3u);  // Ghost link skipped.
}

TEST(CorpusTest, MinReviewsFilterSkipsThinItems) {
  Corpus corpus("test");
  corpus.AddProduct(TinyProduct("t", 4, {"thin", "ok1", "ok2"})).CheckOK();
  corpus.AddProduct(TinyProduct("thin", 1)).CheckOK();
  corpus.AddProduct(TinyProduct("ok1", 3)).CheckOK();
  corpus.AddProduct(TinyProduct("ok2", 3)).CheckOK();
  corpus.Finalize();

  InstanceOptions options;
  options.min_reviews_per_item = 2;
  auto instances = corpus.BuildInstances(options);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].num_items(), 3u);  // "thin" excluded.
}

TEST(CorpusTest, MinComparativeItemsFilter) {
  Corpus corpus("test");
  corpus.AddProduct(TinyProduct("t", 4, {"c1"})).CheckOK();
  corpus.AddProduct(TinyProduct("c1", 4)).CheckOK();
  corpus.Finalize();

  InstanceOptions options;
  options.min_comparative_items = 2;
  EXPECT_TRUE(corpus.BuildInstances(options).empty());
  options.min_comparative_items = 1;
  EXPECT_EQ(corpus.BuildInstances(options).size(), 1u);
}

TEST(CorpusTest, MaxComparativeItemsCap) {
  Corpus corpus("test");
  corpus.AddProduct(TinyProduct("t", 4, {"c1", "c2", "c3", "c4"})).CheckOK();
  for (const char* id : {"c1", "c2", "c3", "c4"}) {
    corpus.AddProduct(TinyProduct(id, 3)).CheckOK();
  }
  corpus.Finalize();

  InstanceOptions options;
  options.max_comparative_items = 2;
  auto instances = corpus.BuildInstances(options);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].num_items(), 3u);  // Target + 2 comparatives.
}

TEST(CorpusTest, SelfLinkIgnored) {
  Corpus corpus("test");
  corpus.AddProduct(TinyProduct("t", 4, {"t", "c1", "c2"})).CheckOK();
  corpus.AddProduct(TinyProduct("c1", 3)).CheckOK();
  corpus.AddProduct(TinyProduct("c2", 3)).CheckOK();
  corpus.Finalize();
  auto instances = corpus.BuildInstances();
  ASSERT_EQ(instances.size(), 1u);
  for (const Product* item : instances[0].items) {
    EXPECT_NE(item, nullptr);
  }
  EXPECT_EQ(instances[0].num_items(), 3u);
}

TEST(CorpusTest, WorkingExampleFixtureWellFormed) {
  Corpus corpus = testing::WorkingExampleCorpus();
  EXPECT_EQ(corpus.num_products(), 3u);
  EXPECT_EQ(corpus.num_aspects(), 5u);
  EXPECT_EQ(corpus.catalog().Name(testing::kBattery), "battery");
  EXPECT_EQ(corpus.catalog().Name(testing::kShuttle), "shuttle");
  auto instances = corpus.BuildInstances();
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].num_items(), 3u);
}

}  // namespace
}  // namespace comparesets
