#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace comparesets {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123, 1);
  Rng b(123, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1, 1);
  Rng b(2, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(1, 1);
  Rng b(1, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformU32StaysInBounds) {
  Rng rng(7);
  for (uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU32(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    int v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // All 6 values appear in 500 draws.
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kSamples;
  double variance = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(variance, 1.0, 0.05);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(17);
  for (double shape : {0.5, 1.0, 2.5, 8.0}) {
    double sum = 0.0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / kSamples, shape, shape * 0.06) << "shape=" << shape;
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);  // Zero-weight bucket never drawn.
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> sample = rng.Dirichlet({1.0, 2.0, 0.5, 4.0});
    double total = 0.0;
    for (double v : sample) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RngTest, DirichletMeanTracksConcentration) {
  Rng rng(29);
  std::vector<double> alpha = {1.0, 3.0};
  double sum_first = 0.0;
  constexpr int kSamples = 8000;
  for (int i = 0; i < kSamples; ++i) sum_first += rng.Dirichlet(alpha)[0];
  EXPECT_NEAR(sum_first / kSamples, 0.25, 0.02);
}

TEST(RngTest, PoissonMeanMatchesLambda) {
  Rng rng(31);
  for (double lambda : {0.5, 3.0, 25.0, 80.0}) {
    double sum = 0.0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) sum += rng.Poisson(lambda);
    EXPECT_NEAR(sum / kSamples, lambda, std::max(0.05, lambda * 0.04))
        << "lambda=" << lambda;
  }
}

TEST(RngTest, GeometricMeanMatchesFormula) {
  Rng rng(37);
  double p = 0.25;
  double sum = 0.0;
  constexpr int kSamples = 30000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Geometric(p);
  EXPECT_NEAR(sum / kSamples, (1.0 - p) / p, 0.1);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(41);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.Geometric(1.0), 0);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(20, 7);
    EXPECT_EQ(sample.size(), 7u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (size_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(47);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

}  // namespace
}  // namespace comparesets
