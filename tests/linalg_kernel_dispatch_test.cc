// Bitwise scalar ≡ AVX2 equivalence for every KernelDispatch entry.
//
// The kernel layer's whole contract is that switching dispatch targets
// can never change a result — not "close", bit-identical (kernels.h,
// "Bit-reproducibility contract"). These tests compare every kernel's
// output between ScalarKernels() and Avx2Kernels() with EXPECT_EQ on
// doubles (exact bits for finite values), over randomized sizes that
// sweep every remainder-lane count, plus empty and aliased inputs.
// On hardware without AVX2 the cross-target half skips; the scalar
// self-consistency half still runs.

#include <cmath>
#include <cstddef>
#include <vector>

#include "gtest/gtest.h"
#include "linalg/kernels/kernels.h"
#include "util/rng.h"

namespace comparesets {
namespace {

/// Sizes chosen to cover 0, every tail length 1..7 against the 4-wide
/// vector body, and larger blocks with all remainders.
const std::vector<size_t> kSizes = {0,  1,  2,  3,  4,  5,  6,  7,
                                    8,  15, 16, 17, 31, 64, 100, 257};

std::vector<double> RandomValues(Rng& rng, size_t n) {
  std::vector<double> values(n);
  for (double& v : values) v = rng.UniformDouble(-10.0, 10.0);
  return values;
}

/// Random strictly-increasing row indices into [0, universe).
std::vector<size_t> RandomRows(Rng& rng, size_t nnz, size_t universe) {
  std::vector<size_t> rows;
  rows.reserve(nnz);
  size_t next = 0;
  for (size_t k = 0; k < nnz; ++k) {
    size_t slack = (universe - next) - (nnz - k);
    next += static_cast<size_t>(rng.UniformInt(0, static_cast<int>(
                                                      std::min<size_t>(slack, 3))));
    rows.push_back(next);
    ++next;
  }
  return rows;
}

/// A random CSC matrix (col_ptr / row_idx / values) with `cols` columns
/// over `rows` rows, including some empty columns.
struct RandomCsc {
  std::vector<size_t> col_ptr;
  std::vector<size_t> row_idx;
  std::vector<double> values;

  RandomCsc(Rng& rng, size_t rows, size_t cols) {
    col_ptr.push_back(0);
    for (size_t c = 0; c < cols; ++c) {
      size_t nnz = static_cast<size_t>(rng.UniformInt(0, static_cast<int>(
                                                             std::min<size_t>(rows, 9))));
      std::vector<size_t> column_rows = RandomRows(rng, nnz, rows);
      for (size_t r : column_rows) {
        row_idx.push_back(r);
        values.push_back(rng.UniformDouble(-5.0, 5.0));
      }
      col_ptr.push_back(row_idx.size());
    }
  }
};

class KernelDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    simd_ = Avx2Kernels();
    if (simd_ == nullptr) {
      GTEST_SKIP() << "AVX2 target unavailable on this host/build";
    }
  }

  const KernelDispatch& scalar_ = ScalarKernels();
  const KernelDispatch* simd_ = nullptr;
};

TEST_F(KernelDispatchTest, DotSumsqSquaredDistanceBitIdentical) {
  Rng rng(7);
  for (size_t n : kSizes) {
    std::vector<double> x = RandomValues(rng, n);
    std::vector<double> y = RandomValues(rng, n);
    EXPECT_EQ(scalar_.dot(x.data(), y.data(), n),
              simd_->dot(x.data(), y.data(), n))
        << "dot, n=" << n;
    EXPECT_EQ(scalar_.sumsq(x.data(), n), simd_->sumsq(x.data(), n))
        << "sumsq, n=" << n;
    EXPECT_EQ(scalar_.squared_distance(x.data(), y.data(), n),
              simd_->squared_distance(x.data(), y.data(), n))
        << "squared_distance, n=" << n;
    // Aliased reduction (x · x) must match sumsq in both targets.
    EXPECT_EQ(scalar_.dot(x.data(), x.data(), n), scalar_.sumsq(x.data(), n))
        << "scalar dot(x,x) != sumsq(x), n=" << n;
    EXPECT_EQ(simd_->dot(x.data(), x.data(), n), simd_->sumsq(x.data(), n))
        << "avx2 dot(x,x) != sumsq(x), n=" << n;
  }
}

TEST_F(KernelDispatchTest, AxpyAndScaleBitIdentical) {
  Rng rng(11);
  for (size_t n : kSizes) {
    std::vector<double> x = RandomValues(rng, n);
    std::vector<double> y = RandomValues(rng, n);
    double alpha = rng.UniformDouble(-3.0, 3.0);

    std::vector<double> y_scalar = y;
    std::vector<double> y_simd = y;
    scalar_.axpy(alpha, x.data(), y_scalar.data(), n);
    simd_->axpy(alpha, x.data(), y_simd.data(), n);
    EXPECT_EQ(y_scalar, y_simd) << "axpy, n=" << n;

    std::vector<double> x_scalar = x;
    std::vector<double> x_simd = x;
    scalar_.scale(alpha, x_scalar.data(), n);
    simd_->scale(alpha, x_simd.data(), n);
    EXPECT_EQ(x_scalar, x_simd) << "scale, n=" << n;
  }
}

TEST_F(KernelDispatchTest, GatherKernelsBitIdentical) {
  Rng rng(13);
  const size_t universe = 300;
  std::vector<double> dense = RandomValues(rng, universe);
  for (size_t nnz : kSizes) {
    std::vector<double> values = RandomValues(rng, nnz);
    std::vector<size_t> rows = RandomRows(rng, nnz, universe);
    EXPECT_EQ(scalar_.gather_dot(values.data(), rows.data(), nnz, dense.data()),
              simd_->gather_dot(values.data(), rows.data(), nnz, dense.data()))
        << "gather_dot, nnz=" << nnz;

    double alpha = rng.UniformDouble(-2.0, 2.0);
    std::vector<double> y_scalar = RandomValues(rng, nnz);
    std::vector<double> y_simd = y_scalar;
    scalar_.gather_axpy(alpha, dense.data(), rows.data(), y_scalar.data(), nnz);
    simd_->gather_axpy(alpha, dense.data(), rows.data(), y_simd.data(), nnz);
    EXPECT_EQ(y_scalar, y_simd) << "gather_axpy, nnz=" << nnz;

    std::vector<double> dense_scalar = dense;
    std::vector<double> dense_simd = dense;
    scalar_.scatter_add(alpha, values.data(), rows.data(), nnz,
                        dense_scalar.data());
    simd_->scatter_add(alpha, values.data(), rows.data(), nnz,
                       dense_simd.data());
    EXPECT_EQ(dense_scalar, dense_simd) << "scatter_add, nnz=" << nnz;

    scalar_.scatter_set(values.data(), rows.data(), nnz, dense_scalar.data());
    simd_->scatter_set(values.data(), rows.data(), nnz, dense_simd.data());
    EXPECT_EQ(dense_scalar, dense_simd) << "scatter_set, nnz=" << nnz;

    scalar_.scatter_clear(rows.data(), nnz, dense_scalar.data());
    simd_->scatter_clear(rows.data(), nnz, dense_simd.data());
    EXPECT_EQ(dense_scalar, dense_simd) << "scatter_clear, nnz=" << nnz;
  }
}

TEST_F(KernelDispatchTest, SparseMatrixKernelsBitIdentical) {
  Rng rng(17);
  for (size_t cols : {size_t{0}, size_t{1}, size_t{3}, size_t{17}, size_t{40}}) {
    const size_t rows = 50;
    RandomCsc csc(rng, rows, cols);
    std::vector<double> x = RandomValues(rng, rows);

    std::vector<double> out_scalar(cols, -1.0);
    std::vector<double> out_simd(cols, -2.0);
    scalar_.sparse_gemv_t(csc.col_ptr.data(), csc.row_idx.data(),
                          csc.values.data(), cols, x.data(), out_scalar.data());
    simd_->sparse_gemv_t(csc.col_ptr.data(), csc.row_idx.data(),
                         csc.values.data(), cols, x.data(), out_simd.data());
    EXPECT_EQ(out_scalar, out_simd) << "sparse_gemv_t, cols=" << cols;

    scalar_.colnorms_sq(csc.col_ptr.data(), csc.values.data(), cols,
                        out_scalar.data());
    simd_->colnorms_sq(csc.col_ptr.data(), csc.values.data(), cols,
                       out_simd.data());
    EXPECT_EQ(out_scalar, out_simd) << "colnorms_sq, cols=" << cols;

    // gram_scatter on every pivot column j, with j's column scattered
    // into a dense buffer first (the Gram build's exact call pattern).
    std::vector<double> scatter(rows, 0.0);
    for (size_t j = 0; j < cols; ++j) {
      size_t nnz = csc.col_ptr[j + 1] - csc.col_ptr[j];
      scalar_.scatter_set(csc.values.data() + csc.col_ptr[j],
                          csc.row_idx.data() + csc.col_ptr[j], nnz,
                          scatter.data());
      std::vector<double> col_scalar(j + 1, -1.0);
      std::vector<double> col_simd(j + 1, -2.0);
      scalar_.gram_scatter(csc.col_ptr.data(), csc.row_idx.data(),
                           csc.values.data(), j, scatter.data(),
                           col_scalar.data());
      simd_->gram_scatter(csc.col_ptr.data(), csc.row_idx.data(),
                          csc.values.data(), j, scatter.data(),
                          col_simd.data());
      EXPECT_EQ(col_scalar, col_simd) << "gram_scatter, j=" << j;
      scalar_.scatter_clear(csc.row_idx.data() + csc.col_ptr[j], nnz,
                            scatter.data());
    }
  }
}

TEST_F(KernelDispatchTest, TrsmKernelsBitIdenticalAndMatchSingleRhs) {
  Rng rng(19);
  for (size_t dim : {size_t{1}, size_t{2}, size_t{5}, size_t{12}}) {
    // Well-conditioned lower factor: random with a dominant diagonal.
    const size_t stride = dim + 3;  // Exercise stride > dim.
    std::vector<double> l(dim * stride, 0.0);
    for (size_t r = 0; r < dim; ++r) {
      for (size_t c = 0; c < r; ++c) l[r * stride + c] = rng.UniformDouble(-1.0, 1.0);
      l[r * stride + r] = rng.UniformDouble(1.0, 2.0);
    }
    for (size_t nrhs : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{7},
                        size_t{9}}) {
      std::vector<double> b = RandomValues(rng, dim * nrhs);

      std::vector<double> fwd_scalar = b;
      std::vector<double> fwd_simd = b;
      scalar_.trsm_forward(l.data(), stride, dim, fwd_scalar.data(), nrhs);
      simd_->trsm_forward(l.data(), stride, dim, fwd_simd.data(), nrhs);
      EXPECT_EQ(fwd_scalar, fwd_simd)
          << "trsm_forward, dim=" << dim << " nrhs=" << nrhs;

      std::vector<double> bwd_scalar = b;
      std::vector<double> bwd_simd = b;
      scalar_.trsm_backward(l.data(), stride, dim, bwd_scalar.data(), nrhs);
      simd_->trsm_backward(l.data(), stride, dim, bwd_simd.data(), nrhs);
      EXPECT_EQ(bwd_scalar, bwd_simd)
          << "trsm_backward, dim=" << dim << " nrhs=" << nrhs;

      // Multi-RHS must equal nrhs independent single-RHS solves,
      // column by column, in BOTH targets.
      for (const KernelDispatch* kernels : {&scalar_, simd_}) {
        std::vector<double> multi = b;
        kernels->trsm_forward(l.data(), stride, dim, multi.data(), nrhs);
        for (size_t k = 0; k < nrhs; ++k) {
          std::vector<double> single(dim);
          for (size_t r = 0; r < dim; ++r) single[r] = b[r * nrhs + k];
          kernels->trsm_forward(l.data(), stride, dim, single.data(), 1);
          for (size_t r = 0; r < dim; ++r) {
            EXPECT_EQ(multi[r * nrhs + k], single[r])
                << kernels->name << " trsm_forward multi-vs-single, dim="
                << dim << " nrhs=" << nrhs << " col=" << k << " row=" << r;
          }
        }
      }
    }
  }
}

TEST_F(KernelDispatchTest, DispatchOverrideSwitchesAndRestores) {
  const KernelDispatch& before = Kernels();
  ASSERT_TRUE(SetKernelDispatch("scalar"));
  EXPECT_STREQ(Kernels().name, "scalar");
  ASSERT_TRUE(SetKernelDispatch("avx2"));
  EXPECT_STREQ(Kernels().name, "avx2");
  EXPECT_FALSE(SetKernelDispatch("no-such-target"));
  EXPECT_STREQ(Kernels().name, "avx2") << "failed switch must not change it";
  ASSERT_TRUE(SetKernelDispatch("auto"));
  (void)before;
}

// Scalar-only sanity (runs even where AVX2 is unavailable): the scalar
// kernels agree with a naive re-implementation on the values level.
TEST(KernelScalarTest, MatchesNaiveReference) {
  Rng rng(23);
  const KernelDispatch& scalar = ScalarKernels();
  for (size_t n : kSizes) {
    std::vector<double> x = RandomValues(rng, n);
    std::vector<double> y = RandomValues(rng, n);
    double naive = 0.0;
    for (size_t i = 0; i < n; ++i) naive += x[i] * y[i];
    EXPECT_NEAR(scalar.dot(x.data(), y.data(), n), naive,
                1e-12 * (1.0 + std::fabs(naive)));
  }
  EXPECT_EQ(scalar.dot(nullptr, nullptr, 0), 0.0);
  EXPECT_EQ(scalar.sumsq(nullptr, 0), 0.0);
}

}  // namespace
}  // namespace comparesets
